//! Update-equivalence differential suite: a plan mutated in place by
//! [`spasm::Prepared::apply_delta`] must be indistinguishable from a plan
//! prepared from scratch on the mutated matrix.
//!
//! Every matrix value and probe entry is a small multiple of 0.25, so all
//! partial sums are exactly representable in `f32` and "indistinguishable"
//! means **bit for bit**: identical output bits across batch sizes
//! {1, 8}, worker budgets {1, 2, 7} and both dispatch modes (building
//! with `--features simd` turns the sweep into the SIMD-vs-scalar
//! differential; CI runs both rows), identical execution reports, and —
//! under a pinned schedule — identical `memory_bytes` repricing.
//!
//! The suite covers all three update paths: values-only copy-on-write
//! patches, structural tile splices, and the drift-triggered full
//! re-prepare fallback, plus the stale-golden regression (a values-only
//! delta under `IntegrityPolicy::Full` must verify against the *updated*
//! values, not the ones the plan was prepared with).

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spasm::{DeltaOutcome, IntegrityPolicy, Pipeline, PipelineError, PipelineOptions, Prepared};
use spasm_hw::{Dispatch, HwConfig};
use spasm_patterns::TemplateSet;
use spasm_sparse::{Coo, Csr, DeltaOp, MatrixDelta, SpMv};
use spasm_workloads::{changesets, ChangesetConfig};

/// Batch sizes and worker budgets the equivalence sweep covers.
const BATCHES: [usize; 2] = [1, 8];
const BUDGETS: [usize; 3] = [1, 2, 7];

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Distinct x vectors with entries that are small multiples of 0.25.
fn probe_batch(cols: u32, batch: usize) -> Vec<Vec<f32>> {
    (0..batch)
        .map(|j| {
            (0..cols)
                .map(|i| (((i as usize + 3 * j) % 9) as f32) * 0.5 - 2.0 + j as f32 * 0.25)
                .collect()
        })
        .collect()
}

/// Runs `f` under an explicit ambient worker budget (no-op in serial
/// builds, where every budget degenerates to one worker).
fn with_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored shim pool builder is infallible")
        .install(f)
}

/// Random triplets with exactly-representable values (multiples of 0.25).
fn random_coo(rng: &mut SmallRng, rows: u32, cols: u32, n_entries: usize) -> Coo {
    let t: Vec<(u32, u32, f32)> = (0..n_entries)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(1..=32) as f32 * 0.25,
            )
        })
        .collect();
    Coo::from_triplets(rows, cols, t).unwrap()
}

/// The matrix zoo: a random rectangular matrix, dense 4×4 blocks (long
/// same-class runs), and a scattered anti-diagonal (single-entry
/// submatrices everywhere).
fn zoo() -> Vec<Coo> {
    let mut rng = SmallRng::seed_from_u64(0x0DE1_7A01);
    let mut zoo = vec![random_coo(&mut rng, 96, 64, 420)];
    let mut t = Vec::new();
    for _ in 0..24 {
        let (br, bc) = (rng.gen_range(0..12u32), rng.gen_range(0..12u32));
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((br * 4 + r, bc * 4 + c, rng.gen_range(1..=8) as f32 * 0.25));
            }
        }
    }
    zoo.push(Coo::from_triplets(48, 48, t).unwrap());
    zoo.push(
        Coo::from_triplets(
            61,
            61,
            (0..61u32)
                .map(|i| (i, 60 - i, ((i % 12) + 1) as f32 * 0.25))
                .collect(),
        )
        .unwrap(),
    );
    zoo
}

/// Pins portfolio and schedule so a from-scratch prepare of the mutated
/// matrix explores exactly the same space the live plan was built in —
/// making `memory_bytes` and execution reports directly comparable.
fn pinned() -> PipelineOptions {
    PipelineOptions::default()
        .fixed_portfolio(TemplateSet::table_v_set(0))
        .fixed_schedule(256, HwConfig::spasm_4_1())
}

/// Applies a delta sequence to a cell map and rebuilds the mutated COO —
/// the reference semantics `apply_delta` must reproduce.
fn mutated_coo(base: &Coo, seq: &[(u64, MatrixDelta)]) -> Coo {
    let mut cells: BTreeMap<(u32, u32), f32> = base.iter().map(|(r, c, v)| ((r, c), v)).collect();
    for (_, delta) in seq {
        for op in delta.ops() {
            match *op {
                DeltaOp::Patch { row, col, value } | DeltaOp::Insert { row, col, value } => {
                    cells.insert((row, col), value);
                }
                DeltaOp::Delete { row, col } => {
                    cells.remove(&(row, col));
                }
            }
        }
    }
    let triplets: Vec<(u32, u32, f32)> = cells.into_iter().map(|((r, c), v)| (r, c, v)).collect();
    Coo::from_triplets(base.rows(), base.cols(), triplets).unwrap()
}

/// The full equivalence sweep: live (delta-updated) vs fresh (prepared
/// from scratch on the mutated matrix), bit for bit, across batch sizes ×
/// worker budgets × both dispatch modes, with identical execution reports
/// and identical memory repricing.
fn assert_update_equivalence(live: &mut Prepared, fresh: &mut Prepared, label: &str) {
    let (rows, cols) = (live.plan.rows(), live.plan.cols());
    assert_eq!(
        (rows, cols),
        (fresh.plan.rows(), fresh.plan.cols()),
        "{label}: shape"
    );
    assert_eq!(
        live.plan.memory_bytes(),
        fresh.plan.memory_bytes(),
        "{label}: memory_bytes must be repriced to the from-scratch figure"
    );

    // The lazily-rebuilt golden CSR must describe the mutated matrix.
    let x = &probe_batch(cols, 1)[0];
    let mut y_live = vec![0.0f32; rows as usize];
    let mut y_fresh = vec![0.0f32; rows as usize];
    live.golden().spmv(x, &mut y_live).unwrap();
    fresh.golden().spmv(x, &mut y_fresh).unwrap();
    assert_eq!(bits(&y_live), bits(&y_fresh), "{label}: golden CSR");

    for dispatch in [Dispatch::Classed, Dispatch::PerInstance] {
        live.plan.set_dispatch(dispatch);
        fresh.plan.set_dispatch(dispatch);
        for batch in BATCHES {
            let xs = probe_batch(cols, batch);
            for budget in BUDGETS {
                let mut got = vec![vec![0.25f32; rows as usize]; batch];
                let mut want = vec![vec![0.25f32; rows as usize]; batch];
                let (r_live, r_fresh) = with_budget(budget, || {
                    let r_live = live.plan.run_batch(&xs, &mut got).unwrap().clone();
                    let r_fresh = fresh.plan.run_batch(&xs, &mut want).unwrap().clone();
                    (r_live, r_fresh)
                });
                for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        bits(g),
                        bits(w),
                        "{label}: vector {j}/{batch} at {budget} workers, {dispatch:?}"
                    );
                }
                assert_eq!(
                    r_live, r_fresh,
                    "{label}: ExecReport at batch {batch}, {budget} workers, {dispatch:?}"
                );
            }
        }
    }
    live.plan.set_dispatch(Dispatch::Classed);
    fresh.plan.set_dispatch(Dispatch::Classed);
}

#[test]
fn values_only_deltas_are_bit_identical_to_fresh_prepare() {
    for (i, base) in zoo().into_iter().enumerate() {
        let seq = changesets(
            &base,
            0xC0DE + i as u64,
            &ChangesetConfig::default().values_only(),
        );
        assert!(!seq.is_empty());
        let mut live = Pipeline::with_options(pinned()).prepare(&base).unwrap();
        let before = live.plan.version();
        for (k, (_, delta)) in seq.iter().enumerate() {
            let outcome = live.apply_delta(delta).unwrap();
            assert!(
                matches!(outcome, DeltaOutcome::Patched { entries } if entries == delta.len()),
                "zoo[{i}] delta {k}: values-only must take the COW patch path, got {outcome:?}"
            );
        }
        assert_eq!(
            live.plan.version(),
            before + seq.len() as u64,
            "zoo[{i}]: one version bump per applied delta"
        );
        let mutated = mutated_coo(&base, &seq);
        let mut fresh = Pipeline::with_options(pinned()).prepare(&mutated).unwrap();
        assert_update_equivalence(&mut live, &mut fresh, &format!("zoo[{i}] values-only"));
    }
}

#[test]
fn structural_deltas_are_bit_identical_to_fresh_prepare() {
    let mut spliced_somewhere = false;
    for (i, base) in zoo().into_iter().enumerate() {
        let seq = changesets(
            &base,
            0xBEEF + i as u64,
            &ChangesetConfig {
                deltas: 4,
                ops_per_delta: 6,
                ..ChangesetConfig::default().structural_only()
            },
        );
        assert!(!seq.is_empty());
        let mut live = Pipeline::with_options(pinned()).prepare(&base).unwrap();
        let before = live.plan.version();
        for (_, delta) in &seq {
            let outcome = live.apply_delta(delta).unwrap();
            match outcome {
                DeltaOutcome::Spliced { submatrices } => {
                    assert!(submatrices > 0);
                    spliced_somewhere = true;
                }
                DeltaOutcome::Reprepared { .. } => {}
                DeltaOutcome::Patched { .. } => {
                    panic!("zoo[{i}]: structural delta must not take the patch path")
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(live.plan.version(), before + seq.len() as u64);
        let mutated = mutated_coo(&base, &seq);
        let mut fresh = Pipeline::with_options(pinned()).prepare(&mutated).unwrap();
        assert_update_equivalence(&mut live, &mut fresh, &format!("zoo[{i}] structural"));
    }
    assert!(
        spliced_somewhere,
        "at least one changeset must exercise the tile-splice fast path"
    );
}

#[test]
fn mixed_changeset_stream_stays_bit_identical_across_many_deltas() {
    let base = zoo().remove(0);
    let seq = changesets(
        &base,
        0x1413ED,
        &ChangesetConfig {
            deltas: 10,
            ops_per_delta: 12,
            ..ChangesetConfig::default()
        },
    );
    let mut live = Pipeline::with_options(pinned()).prepare(&base).unwrap();
    for (k, (_, delta)) in seq.iter().enumerate() {
        live.apply_delta(delta).unwrap();
        // Equivalence holds at *every* intermediate state, not just the
        // final one: compare against a from-scratch prepare of the prefix.
        if k == seq.len() / 2 || k + 1 == seq.len() {
            let mutated = mutated_coo(&base, &seq[..=k]);
            let mut fresh = Pipeline::with_options(pinned()).prepare(&mutated).unwrap();
            assert_update_equivalence(&mut live, &mut fresh, &format!("mixed prefix ..={k}"));
        }
    }
}

#[test]
fn drift_forcing_delta_reprepares_and_still_matches() {
    // A zero drift threshold classifies every structural delta as drift,
    // forcing the full re-prepare fallback; the result must still be bit
    // for bit what a from-scratch prepare produces, with the version stamp
    // advancing monotonically through the rebuild.
    let base = zoo().remove(0);
    let opts = pinned().drift_threshold(0.0);
    let mut live = Pipeline::with_options(opts.clone()).prepare(&base).unwrap();
    let before = live.plan.version();
    let seq = changesets(
        &base,
        0xD81F7,
        &ChangesetConfig {
            deltas: 1,
            ops_per_delta: 8,
            ..ChangesetConfig::default().structural_only()
        },
    );
    let outcome = live.apply_delta(&seq[0].1).unwrap();
    match outcome {
        DeltaOutcome::Reprepared {
            changed_fraction, ..
        } => {
            assert!(changed_fraction > 0.0);
        }
        other => panic!("threshold 0 must force a re-prepare, got {other:?}"),
    }
    assert_eq!(
        live.plan.version(),
        before + 1,
        "re-prepare keeps stamps monotonic"
    );

    let mutated = mutated_coo(&base, &seq);
    let mut fresh = Pipeline::with_options(opts).prepare(&mutated).unwrap();
    assert_update_equivalence(&mut live, &mut fresh, "drift re-prepare");
}

#[test]
fn values_only_delta_under_full_integrity_verifies_against_updated_values() {
    // Regression for the stale-golden hazard: IntegrityPolicy::Full
    // cross-checks every output row against the golden CSR reference. If a
    // values-only delta patched the encoded stream but not the golden
    // copy, verification would flag pristine output as corrupt and fall
    // back to the *old* values. The golden copy must be co-updated.
    let mut rng = SmallRng::seed_from_u64(0x57A1E);
    let base = random_coo(&mut rng, 72, 72, 300);
    let opts = pinned().integrity(IntegrityPolicy::full());
    let mut live = Pipeline::with_options(opts.clone()).prepare(&base).unwrap();

    // Execute once first so the golden CSR is materialised *before* the
    // delta lands (the hazard needs an already-built golden to go stale).
    let xs = probe_batch(72, 1);
    let mut warm = vec![vec![0.0f32; 72]; 1];
    live.execute_batch_into(&xs, &mut warm).unwrap();

    let seq = changesets(&base, 0x57A1E, &ChangesetConfig::default().values_only());
    for (_, delta) in &seq {
        assert!(matches!(
            live.apply_delta(delta).unwrap(),
            DeltaOutcome::Patched { .. }
        ));
    }

    let mut got = vec![vec![0.0f32; 72]; 1];
    live.execute_batch_into(&xs, &mut got).unwrap();
    let (failed_rows, fell_back) = {
        let h = &live.batch_health()[0];
        (h.rows_failed_cross_check, h.fallback)
    };
    assert_eq!(
        failed_rows, 0,
        "pristine output must verify against the updated golden values"
    );
    assert!(
        !fell_back,
        "no spurious golden fallback after a values-only delta"
    );

    // And the verified output is the mutated matrix's product, bit for
    // bit, matching a from-scratch full-integrity prepare.
    let mutated = mutated_coo(&base, &seq);
    let mut fresh = Pipeline::with_options(opts).prepare(&mutated).unwrap();
    let mut want = vec![vec![0.0f32; 72]; 1];
    fresh.execute_batch_into(&xs, &mut want).unwrap();
    assert_eq!(bits(&got[0]), bits(&want[0]), "full-integrity output bits");

    let mut csr_want = vec![0.0f32; 72];
    Csr::from(&mutated).spmv(&xs[0], &mut csr_want).unwrap();
    let mut golden_live = vec![0.0f32; 72];
    live.golden().spmv(&xs[0], &mut golden_live).unwrap();
    assert_eq!(
        bits(&golden_live),
        bits(&csr_want),
        "golden tracks the mutated matrix"
    );
}

#[test]
fn rejected_deltas_leave_the_plan_untouched() {
    let base = zoo().remove(0);
    let mut live = Pipeline::with_options(pinned()).prepare(&base).unwrap();
    let xs = probe_batch(base.cols(), 1);
    let mut before = vec![vec![0.0f32; base.rows() as usize]; 1];
    live.execute_batch_into(&xs, &mut before).unwrap();
    // Snapshot after the warm-up run: execution lazily allocates batch
    // scratch that memory_bytes accounts for.
    let version = live.plan.version();
    let memory = live.plan.memory_bytes();

    let rejected = [
        // Out of bounds.
        MatrixDelta::new().patch(base.rows() + 7, 0, 1.0),
        // Explicit zero (would corrupt the padding invariant).
        MatrixDelta::new().insert(0, 0, 0.0),
        // Patching an entry while deleting it in the same delta.
        MatrixDelta::new().patch(0, 0, 1.0).delete(0, 0),
        // Deleting a cell that holds no entry (row 95 col 63 is outside
        // every generated entry only with vanishing probability; use a
        // guaranteed-absent probe instead).
        MatrixDelta::new().delete(base.rows() - 1, base.cols() - 1),
    ];
    for (k, delta) in rejected.iter().enumerate() {
        // The last probe may actually be present; skip it in that case.
        if k == 3 && delta.validate(&Csr::from(&base)).is_ok() {
            continue;
        }
        let err = live.apply_delta(delta).unwrap_err();
        assert!(
            matches!(err, PipelineError::Delta(_)),
            "rejected delta {k} must surface the typed error, got {err:?}"
        );
        assert_eq!(
            live.plan.version(),
            version,
            "rejected delta {k} must not bump"
        );
        assert_eq!(
            live.plan.memory_bytes(),
            memory,
            "rejected delta {k} repriced"
        );
        let mut after = vec![vec![0.0f32; base.rows() as usize]; 1];
        live.execute_batch_into(&xs, &mut after).unwrap();
        assert_eq!(
            bits(&after[0]),
            bits(&before[0]),
            "rejected delta {k} changed output"
        );
    }
}
