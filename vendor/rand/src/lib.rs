//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched; this stub keeps call sites source-compatible.
//!
//! The sampling algorithms reproduce `rand` 0.8.5 **bit for bit** on the
//! implemented surface, so a seed produces the same value stream as the real
//! crate (several suite tests encode empirical properties of the workload
//! matrices and depend on the exact stream):
//!
//! * [`rngs::SmallRng`] is xoshiro256++ with SplitMix64 seeding, upper-half
//!   `next_u32`, exactly as upstream `SmallRng` on 64-bit targets;
//! * integer [`Rng::gen_range`] uses Lemire's widening-multiply rejection
//!   with upstream's per-type large-type choice (`u32` lanes for ≤32-bit
//!   types) and zone approximation;
//! * float [`Rng::gen_range`] uses the `[1, 2)` mantissa-fill trick;
//! * [`Rng::gen_bool`] is the fixed-point Bernoulli comparison;
//! * [`seq::SliceRandom::shuffle`] is upstream's reverse Fisher–Yates with
//!   its `u32` index fast path.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Seedable random generators (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (stub of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let r = range.into();
        T::sample(self, r)
    }

    /// Returns `true` with probability `p` (`rand`'s fixed-point Bernoulli).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        if p >= 1.0 {
            return true;
        }
        // p_int = p · 2⁶⁴, compared against a raw draw.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<T: RngCore> Rng for T {}

/// Raw generator core (stub of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits. Like upstream xoshiro256++, takes the *upper*
    /// half of a 64-bit draw (the low bits have linear dependencies).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A uniform sampling domain: either `[lo, hi)` or `[lo, hi]`.
pub struct UniformRange<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: SampleUniform> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        let (lo, hi) = r.into_inner();
        UniformRange {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> From<RangeFrom<T>> for UniformRange<T> {
    fn from(r: RangeFrom<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: T::max_value(),
            inclusive: true,
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// The largest representable value (upper bound of `lo..`).
    fn max_value() -> Self;
    /// Uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: UniformRange<Self>) -> Self;
}

/// `rand`'s per-type "large" sampling lane: every integer type widens to
/// one of these, draws one raw value per rejection round, and splits the
/// widening multiply into `(hi, lo)`.
trait SampleLane: Copy {
    const LANE_MAX: Self;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    fn wmul(self, b: Self) -> (Self, Self);
}

impl SampleLane for u32 {
    const LANE_MAX: Self = u32::MAX;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
    fn wmul(self, b: Self) -> (Self, Self) {
        let full = u64::from(self) * u64::from(b);
        ((full >> 32) as u32, full as u32)
    }
}

impl SampleLane for u64 {
    const LANE_MAX: Self = u64::MAX;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
    fn wmul(self, b: Self) -> (Self, Self) {
        let full = u128::from(self) * u128::from(b);
        ((full >> 64) as u64, full as u64)
    }
}

impl SampleLane for usize {
    const LANE_MAX: Self = usize::MAX;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
    fn wmul(self, b: Self) -> (Self, Self) {
        let full = (self as u128) * (b as u128);
        ((full >> usize::BITS) as usize, full as usize)
    }
}

macro_rules! impl_sample_int {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn max_value() -> Self {
                <$ty>::MAX
            }

            // `rand` 0.8.5 `sample_single_inclusive`: Lemire's
            // widening-multiply rejection, with the modulo zone for sub-u32
            // types and the shifted-range approximation otherwise.
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: UniformRange<Self>) -> Self {
                let UniformRange { lo, hi, inclusive } = range;
                let high = if inclusive {
                    assert!(lo <= hi, "empty gen_range domain");
                    hi
                } else {
                    assert!(lo < hi, "empty gen_range domain");
                    hi - 1
                };
                let span = (high.wrapping_sub(lo) as $unsigned).wrapping_add(1) as $u_large;
                if span == 0 {
                    // The domain is the whole type: a raw draw is uniform.
                    return <$u_large as SampleLane>::draw(rng) as $ty;
                }
                let zone = if (<$unsigned>::MAX as u128) <= u16::MAX as u128 {
                    let ints_to_reject = (<$u_large as SampleLane>::LANE_MAX - span + 1) % span;
                    <$u_large as SampleLane>::LANE_MAX - ints_to_reject
                } else {
                    (span << span.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$u_large as SampleLane>::draw(rng);
                    let (hi_part, lo_part) = v.wmul(span);
                    if lo_part <= zone {
                        return lo.wrapping_add(hi_part as $ty);
                    }
                }
            }
        }
    };
}

impl_sample_int!(u8, u8, u32);
impl_sample_int!(u16, u16, u32);
impl_sample_int!(u32, u32, u32);
impl_sample_int!(u64, u64, u64);
impl_sample_int!(usize, usize, usize);
impl_sample_int!(i8, u8, u32);
impl_sample_int!(i16, u16, u32);
impl_sample_int!(i32, u32, u32);
impl_sample_int!(i64, u64, u64);
impl_sample_int!(isize, usize, usize);

macro_rules! impl_sample_float {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_one:expr) => {
        impl SampleUniform for $ty {
            fn max_value() -> Self {
                <$ty>::MAX
            }

            // `rand` 0.8.5 `UniformFloat`: fill the mantissa to get a value
            // in [1, 2), shift down to [0, 1), then scale into the range.
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: UniformRange<Self>) -> Self {
                let UniformRange { lo, hi, inclusive } = range;
                let value0_1 = |rng: &mut R| {
                    let mantissa = <$uty as SampleLane>::draw(rng) >> $bits_to_discard;
                    <$ty>::from_bits(mantissa | $exponent_one) - 1.0
                };
                if inclusive {
                    assert!(lo <= hi, "empty gen_range domain");
                    let max_rand =
                        <$ty>::from_bits((<$uty>::MAX >> $bits_to_discard) | $exponent_one) - 1.0;
                    let scale = (hi - lo) / max_rand;
                    return value0_1(rng) * scale + lo;
                }
                assert!(lo < hi, "empty gen_range domain");
                let scale = hi - lo;
                loop {
                    let res = value0_1(rng) * scale + lo;
                    if res < hi {
                        return res;
                    }
                }
            }
        }
    };
}

impl_sample_float!(f32, u32, 9u32, 0x3F80_0000u32);
impl_sample_float!(f64, u64, 12u32, 0x3FF0_0000_0000_0000u64);

/// Named generators (stub of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic PRNG: xoshiro256++ with SplitMix64
    /// seeding, identical to upstream `SmallRng` on 64-bit targets.
    /// Statistically strong for simulation workloads; not cryptographic
    /// (neither is upstream `SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (stub of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (stub of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (reverse Fisher–Yates, as upstream).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Upstream samples indices below u32::MAX through the u32
                // lane; preserving that keeps the stream identical.
                let ubound = i + 1;
                let j = if ubound <= (u32::MAX as usize) + 1 {
                    rng.gen_range(0..ubound as u32) as usize
                } else {
                    rng.gen_range(0..ubound)
                };
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn xoshiro256plusplus_reference_vector() {
        // First outputs for state [1, 2, 3, 4] from the reference
        // implementation (xoshiro256plusplus.c, also pinned by upstream
        // `rand`'s own test). Any drift means the core generator — and
        // therefore every workload matrix — changed.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_uses_splitmix64() {
        // SplitMix64 reference vector for seed 0 (the seeding scheme
        // upstream `SmallRng` uses on 64-bit targets).
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            rng.s,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_from_hits_high_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        // `1u16..` must cover the full upper half eventually.
        let max = (0..4096).map(|_| rng.gen_range(1u16..)).max().unwrap();
        assert!(max > u16::MAX / 2);
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never fixes everything"
        );
    }
}
