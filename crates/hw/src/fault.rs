//! Deterministic fault injection for the simulated accelerator.
//!
//! Only compiled under the `fault-injection` cargo feature; production
//! builds pay zero cost (the plan carries no fault state and the hot loop
//! is unchanged). A [`FaultPlan`] is a seeded, reproducible list of
//! [`Fault`]s drawn from a [`FaultSpec`]; arm it on a plan with
//! [`crate::ExecutionPlan::arm_faults`] and the next executions decode the
//! stream *as if* the faults had struck the hardware:
//!
//! * [`Fault::EncodingFlip`] — one bit of an instance's 32-bit position
//!   encoding word flips in flight, corrupting `c_idx`/`r_idx`/`t_idx`
//!   (transient: a re-read of the stream is pristine);
//! * [`Fault::ValueFlip`] — one bit of one f32 value slot flips in flight
//!   (transient);
//! * [`Fault::LaneStuckZero`] — one of the four VALU output lanes is stuck
//!   at zero (persistent: re-execution goes through the same lane);
//! * [`Fault::ChannelStall`] — an HBM channel stalls for some cycles
//!   (timing-only: data is unaffected, the stall is charged to
//!   [`crate::HealthReport::stall_cycles`]).
//!
//! Determinism: the same `(seed, spec, n_instances)` always yields the
//! same plan, so fault campaigns are exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How many faults of each kind a seeded [`FaultPlan`] should draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Single-bit flips in position-encoding words (transient).
    pub encoding_flips: u32,
    /// Single-bit flips in f32 value slots (transient).
    pub value_flips: u32,
    /// VALU output lanes stuck at zero (persistent).
    pub lane_faults: u32,
    /// HBM channel stalls (timing-only).
    pub channel_stalls: u32,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Flip bit `bit` of instance `instance`'s position-encoding word.
    EncodingFlip {
        /// Stream index of the struck instance.
        instance: usize,
        /// Bit position within the 32-bit encoding word.
        bit: u8,
    },
    /// Flip bit `bit` of value slot `slot` of instance `instance`.
    ValueFlip {
        /// Stream index of the struck instance.
        instance: usize,
        /// Which of the four value slots (0..4).
        slot: u8,
        /// Bit position within the f32's 32-bit pattern.
        bit: u8,
    },
    /// VALU output lane `lane` (0..4) produces zero instead of its result.
    LaneStuckZero {
        /// The stuck lane (0..4).
        lane: u8,
    },
    /// HBM channel `channel` stalls for `cycles` cycles.
    ChannelStall {
        /// The stalled channel index.
        channel: u8,
        /// Stall length in cycles.
        cycles: u32,
    },
}

/// A seeded, deterministic list of faults to inject into executions.
///
/// # Examples
///
/// ```
/// use spasm_hw::fault::{FaultPlan, FaultSpec};
///
/// let spec = FaultSpec { encoding_flips: 2, ..FaultSpec::default() };
/// let a = FaultPlan::seeded(7, &spec, 100);
/// let b = FaultPlan::seeded(7, &spec, 100);
/// assert_eq!(a, b); // same seed, same plan
/// assert_eq!(a.faults().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Draws a fault plan from `spec` for a stream of `n_instances`
    /// template instances, deterministically from `seed`.
    ///
    /// Stream-targeting faults (encoding and value flips) are dropped when
    /// `n_instances == 0` — there is nothing to strike.
    pub fn seeded(seed: u64, spec: &FaultSpec, n_instances: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut faults = Vec::with_capacity(
            (spec.encoding_flips + spec.value_flips + spec.lane_faults + spec.channel_stalls)
                as usize,
        );
        if n_instances > 0 {
            for _ in 0..spec.encoding_flips {
                faults.push(Fault::EncodingFlip {
                    instance: rng.gen_range(0..n_instances),
                    bit: rng.gen_range(0..32u8),
                });
            }
            for _ in 0..spec.value_flips {
                faults.push(Fault::ValueFlip {
                    instance: rng.gen_range(0..n_instances),
                    slot: rng.gen_range(0..4u8),
                    bit: rng.gen_range(0..32u8),
                });
            }
        }
        for _ in 0..spec.lane_faults {
            faults.push(Fault::LaneStuckZero {
                lane: rng.gen_range(0..4u8),
            });
        }
        for _ in 0..spec.channel_stalls {
            faults.push(Fault::ChannelStall {
                channel: rng.gen_range(0..32u8),
                cycles: rng.gen_range(1..=4096u32),
            });
        }
        FaultPlan { seed, faults }
    }

    /// The seed this plan was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The drawn faults, in draw order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let spec = FaultSpec {
            encoding_flips: 3,
            value_flips: 2,
            lane_faults: 1,
            channel_stalls: 1,
        };
        for seed in 0..16u64 {
            assert_eq!(
                FaultPlan::seeded(seed, &spec, 500),
                FaultPlan::seeded(seed, &spec, 500)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec {
            encoding_flips: 4,
            ..FaultSpec::default()
        };
        let plans: Vec<_> = (0..8u64)
            .map(|s| FaultPlan::seeded(s, &spec, 1000))
            .collect();
        assert!(plans.windows(2).any(|w| w[0].faults() != w[1].faults()));
    }

    #[test]
    fn counts_match_spec() {
        let spec = FaultSpec {
            encoding_flips: 5,
            value_flips: 4,
            lane_faults: 2,
            channel_stalls: 3,
        };
        let plan = FaultPlan::seeded(42, &spec, 100);
        assert_eq!(plan.faults().len(), 14);
        assert_eq!(plan.seed(), 42);
        let stream_faults = plan
            .faults()
            .iter()
            .filter(|f| matches!(f, Fault::EncodingFlip { .. } | Fault::ValueFlip { .. }))
            .count();
        assert_eq!(stream_faults, 9);
    }

    #[test]
    fn empty_stream_drops_stream_faults() {
        let spec = FaultSpec {
            encoding_flips: 5,
            value_flips: 5,
            lane_faults: 1,
            channel_stalls: 0,
        };
        let plan = FaultPlan::seeded(1, &spec, 0);
        assert_eq!(plan.faults().len(), 1);
        assert!(matches!(plan.faults()[0], Fault::LaneStuckZero { .. }));
    }

    #[test]
    fn faults_target_valid_ranges() {
        let spec = FaultSpec {
            encoding_flips: 50,
            value_flips: 50,
            lane_faults: 10,
            channel_stalls: 10,
        };
        for seed in 0..8u64 {
            for f in FaultPlan::seeded(seed, &spec, 77).faults() {
                match *f {
                    Fault::EncodingFlip { instance, bit } => {
                        assert!(instance < 77 && bit < 32);
                    }
                    Fault::ValueFlip {
                        instance,
                        slot,
                        bit,
                    } => {
                        assert!(instance < 77 && slot < 4 && bit < 32);
                    }
                    Fault::LaneStuckZero { lane } => assert!(lane < 4),
                    Fault::ChannelStall { channel, cycles } => {
                        assert!(channel < 32 && (1..=4096).contains(&cycles));
                    }
                }
            }
        }
    }
}
