//! A virtual clock for deterministic, sleep-free serving tests.
//!
//! The admission queue's deadline semantics are defined against *ticks*
//! of a [`VirtualClock`], not wall time: the clock only moves when a
//! driver advances it, so a seeded arrival trace replays to the exact
//! same flush schedule on every run, on any machine, with no sleeps.
//! By convention one tick is one microsecond of virtual time (see
//! [`crate::loadgen::TICKS_PER_SECOND`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual time, in ticks (one tick = 1 µs by convention).
pub type Tick = u64;

/// A monotonic virtual clock shared by the server and its drivers.
///
/// All reads and advances are atomic; the clock never goes backwards
/// ([`VirtualClock::advance_to`] clamps to the current time).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> Tick {
        self.now.load(Ordering::SeqCst)
    }

    /// Moves the clock forward by `ticks` and returns the new time.
    pub fn advance(&self, ticks: Tick) -> Tick {
        self.now.fetch_add(ticks, Ordering::SeqCst) + ticks
    }

    /// Moves the clock forward to `t` (no-op if `t` is in the past) and
    /// returns the current time afterwards.
    pub fn advance_to(&self, t: Tick) -> Tick {
        self.now.fetch_max(t, Ordering::SeqCst).max(t)
    }
}

/// An absolute point in virtual time at which a queued batch must flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline {
    /// The tick at which the deadline fires.
    pub at: Tick,
}

impl Deadline {
    /// A deadline `delay` ticks after `now` (saturating).
    pub fn after(now: Tick, delay: Tick) -> Self {
        Deadline {
            at: now.saturating_add(delay),
        }
    }

    /// `true` once the clock has reached the deadline.
    pub fn due(self, now: Tick) -> bool {
        now >= self.at
    }

    /// Ticks left before the deadline fires, or `None` once it has.
    ///
    /// The boundary is exclusive: a deadline due exactly at `now` is
    /// already expired (`remaining` is `None`), never runnable — this is
    /// the contract the queue's shedding decisions are built on, so a
    /// request whose completion deadline equals the flush tick is shed,
    /// not executed.
    pub fn remaining(self, now: Tick) -> Option<Tick> {
        if now < self.at {
            Some(self.at - now)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance_to(3), 5, "advance_to never rewinds");
        assert_eq!(c.advance_to(9), 9);
        assert_eq!(c.now(), 9);
    }

    #[test]
    fn deadlines_fire_at_their_tick() {
        let d = Deadline::after(10, 5);
        assert!(!d.due(14));
        assert!(d.due(15));
        assert!(d.due(16));
        assert_eq!(Deadline::after(u64::MAX, 2).at, u64::MAX);
    }

    #[test]
    fn remaining_boundary_tick_is_expired() {
        let d = Deadline { at: 15 };
        assert_eq!(d.remaining(14), Some(1), "one tick left just before");
        assert_eq!(
            d.remaining(15),
            None,
            "a deadline due exactly at `now` is expired, not runnable"
        );
        assert_eq!(d.remaining(16), None);
        // `remaining` and `due` agree everywhere: due ⇔ no time remains.
        for now in 0..32 {
            assert_eq!(d.due(now), d.remaining(now).is_none(), "tick {now}");
        }
        assert_eq!(Deadline { at: 0 }.remaining(0), None);
    }
}
