//! Determinism tests: every preprocessing output must be identical — to
//! the byte and to the bit — for every thread budget.
//!
//! The parallel layer only uses order-preserving fan-outs and reductions
//! that are associative and commutative, so `Parallelism::Serial` is the
//! oracle and any `Parallelism::Threads(n)` must reproduce it exactly.
//! These tests also pass in `--no-default-features` builds, where every
//! budget degenerates to serial execution.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spasm::patterns::{DecompositionTable, GridSize, PatternHistogram, TemplateSet};
use spasm::{explore_schedule, Parallelism, Pipeline, PipelineOptions};
use spasm_format::SubmatrixMap;
use spasm_hw::HwConfig;
use spasm_sparse::{Coo, Csr, SpMv};

fn random_coo(seed: u64, rows: u32, cols: u32, n_entries: usize) -> Coo {
    let mut rng = SmallRng::seed_from_u64(seed);
    let t: Vec<(u32, u32, f32)> = (0..n_entries)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(1..=64) as f32 * 0.25,
            )
        })
        .collect();
    Coo::from_triplets(rows, cols, t).unwrap()
}

fn pipeline(parallelism: Parallelism) -> Pipeline {
    Pipeline::with_options(PipelineOptions::default().parallelism(parallelism))
}

/// Runs `f` under an explicit worker budget (ambient, not via
/// `PipelineOptions`), for components below the pipeline front-end.
fn with_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored shim pool builder is infallible")
        .install(f)
}

#[test]
fn prepare_is_thread_count_invariant() {
    let m = random_coo(0xDE7_0001, 96, 96, 500);
    let serial = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    for budget in [2usize, 8] {
        let par = pipeline(Parallelism::Threads(budget)).prepare(&m).unwrap();
        assert_eq!(par.selection.set.name(), serial.selection.set.name());
        assert_eq!(par.selection.paddings, serial.selection.paddings);
        assert_eq!(
            par.best, serial.best,
            "schedule winner drifted at {budget} threads"
        );
        assert_eq!(
            par.explored, serial.explored,
            "search trace drifted at {budget} threads"
        );
    }
}

#[test]
fn encoded_stream_is_byte_identical() {
    let m = random_coo(0xDE7_0002, 128, 72, 700);
    let serial = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    let par = pipeline(Parallelism::Threads(8)).prepare(&m).unwrap();
    assert_eq!(
        serial.encoded.to_bytes().to_vec(),
        par.encoded.to_bytes().to_vec(),
        "serialized SPASM stream differs between serial and 8-thread preprocessing"
    );
}

#[test]
fn prepare_set_is_thread_count_invariant() {
    let set: Vec<Coo> = (0..6)
        .map(|i| random_coo(0xDE7_0100 + i, 64 + 8 * i as u32, 64, 300))
        .collect();
    let serial = pipeline(Parallelism::Serial).prepare_set(&set).unwrap();
    let par = pipeline(Parallelism::Threads(8)).prepare_set(&set).unwrap();
    assert_eq!(serial.len(), par.len());
    for (s, p) in serial.iter().zip(&par) {
        assert_eq!(s.selection.set.name(), p.selection.set.name());
        assert_eq!(s.best, p.best);
        assert_eq!(s.encoded.to_bytes().to_vec(), p.encoded.to_bytes().to_vec());
    }
}

#[test]
fn histogram_is_thread_count_invariant() {
    // Large enough to cross the parallel-analysis threshold (2^14 nnz).
    let m = random_coo(0xDE7_0003, 1024, 1024, 40_000);
    let serial = with_budget(1, || PatternHistogram::analyze(&m, GridSize::S4));
    for budget in [2usize, 3, 8] {
        let par = with_budget(budget, || PatternHistogram::analyze(&m, GridSize::S4));
        assert_eq!(par, serial, "histogram drifted at {budget} threads");
    }
}

#[test]
fn explore_schedule_is_thread_count_invariant() {
    let m = random_coo(0xDE7_0004, 512, 512, 4_000);
    let map = SubmatrixMap::from_coo(&m);
    let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    let sizes = [256u32, 512, 1024, 2048, 4096];
    let configs = HwConfig::shipped();
    let (serial_choice, serial_trace) =
        with_budget(1, || explore_schedule(&map, &table, &sizes, &configs)).unwrap();
    for budget in [2usize, 8] {
        let (choice, trace) =
            with_budget(budget, || explore_schedule(&map, &table, &sizes, &configs)).unwrap();
        assert_eq!(choice, serial_choice, "winner drifted at {budget} threads");
        assert_eq!(trace, serial_trace, "trace drifted at {budget} threads");
    }
}

#[test]
fn schedule_tie_break_is_stable() {
    // With a single config repeated, many (tile, config) points tie on
    // predicted time; the argmin must still pick the lowest (tile size,
    // config index) pair under any budget.
    let m = random_coo(0xDE7_0005, 64, 64, 200);
    let map = SubmatrixMap::from_coo(&m);
    let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    let config = HwConfig::spasm_4_1();
    let configs = vec![config.clone(), config.clone(), config];
    let sizes = [1024u32, 1024, 1024];
    let (serial_choice, _) =
        with_budget(1, || explore_schedule(&map, &table, &sizes, &configs)).unwrap();
    let (par_choice, _) =
        with_budget(8, || explore_schedule(&map, &table, &sizes, &configs)).unwrap();
    assert_eq!(par_choice, serial_choice);
}

#[test]
fn parallel_csr_spmv_is_bit_exact() {
    let m = random_coo(0xDE7_0006, 300, 180, 2_500);
    let csr = Csr::from(&m);
    let x: Vec<f32> = (0..180).map(|i| ((i % 13) as f32) * 0.125 - 0.75).collect();

    let mut serial = vec![0.5f32; 300];
    csr.spmv(&x, &mut serial).unwrap();

    for budget in [1usize, 2, 7, 16] {
        let mut par = vec![0.5f32; 300];
        with_budget(budget, || csr.spmv_parallel(&x, &mut par)).unwrap();
        assert_eq!(
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "parallel CSR SpMV drifted at {budget} threads"
        );
    }
}

#[test]
fn skewed_csr_spmv_parallel_is_bit_exact() {
    // Power-law shape: row 0 is dense, a few heavy rows, a long tail of
    // empty rows — the case nnz-balanced partitioning exists for. Results
    // must still be bit-identical for every budget.
    let mut t: Vec<(u32, u32, f32)> = (0..400u32)
        .map(|c| (0, c, 0.25 * ((c % 7) as f32)))
        .collect();
    for r in 1..5u32 {
        for c in 0..60u32 {
            t.push((r, c * 6 % 400, 0.5));
        }
    }
    t.push((299, 399, 1.75)); // lone entry after a run of empty rows
    let m = Coo::from_triplets(300, 400, t).unwrap();
    let csr = Csr::from(&m);
    let x: Vec<f32> = (0..400).map(|i| ((i % 11) as f32) * 0.5 - 2.0).collect();

    let mut serial = vec![0.25f32; 300];
    csr.spmv(&x, &mut serial).unwrap();
    for budget in [1usize, 2, 7, 16, 300] {
        let mut par = vec![0.25f32; 300];
        with_budget(budget, || csr.spmv_parallel(&x, &mut par)).unwrap();
        assert_eq!(
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "skewed parallel CSR SpMV drifted at {budget} threads"
        );
    }
}

#[test]
fn plan_run_is_thread_count_invariant() {
    // The prepared plan's tile-row fan-out must be invisible: y bits and
    // the ExecReport must match the one-shot simulator for every budget.
    let m = random_coo(0xDE7_0008, 220, 160, 1_800);
    let prepared = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    let acc = prepared.accelerator();
    let x: Vec<f32> = (0..160).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();

    let mut want = vec![0.5f32; 220];
    let want_report = with_budget(1, || acc.run(&prepared.encoded, &x, &mut want)).unwrap();
    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();

    for budget in [1usize, 2, 7, 16] {
        let mut plan = acc.prepare(&prepared.encoded).unwrap();
        let mut y = vec![0.5f32; 220];
        let report = with_budget(budget, || plan.run(&x, &mut y).cloned()).unwrap();
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_bits,
            "plan.run y drifted at {budget} threads"
        );
        assert_eq!(
            report, want_report,
            "ExecReport drifted at {budget} threads"
        );
    }
}

#[test]
fn plan_reuse_has_no_drift() {
    // One plan, 100 runs: identical bits every time (the scratch buffers
    // must be fully re-initialised per call).
    let m = random_coo(0xDE7_0009, 130, 130, 900);
    let prepared = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    let mut plan = prepared.accelerator().prepare(&prepared.encoded).unwrap();
    let x: Vec<f32> = (0..130).map(|i| ((i % 5) as f32) * 0.25 - 0.5).collect();

    let mut first = vec![1.5f32; 130];
    let first_report = plan.run(&x, &mut first).unwrap().clone();
    let first_bits: Vec<u32> = first.iter().map(|v| v.to_bits()).collect();
    for i in 1..100 {
        let mut y = vec![1.5f32; 130];
        let report = plan.run(&x, &mut y).unwrap().clone();
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            first_bits,
            "plan output drifted on reuse {i}"
        );
        assert_eq!(report, first_report, "report drifted on reuse {i}");
    }
}

#[test]
fn pipeline_execute_is_thread_count_invariant() {
    // Prepared::execute runs the plan under the pipeline's own budget;
    // every budget must produce the serial bits.
    let m = random_coo(0xDE7_000A, 150, 150, 1_200);
    let x: Vec<f32> = (0..150).map(|i| ((i % 7) as f32) * 0.5 - 1.0).collect();

    let mut serial_prepared = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    let mut want = vec![0.0f32; 150];
    serial_prepared.execute(&x, &mut want).unwrap();
    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();

    for budget in [2usize, 7, 16] {
        let mut prepared = pipeline(Parallelism::Threads(budget)).prepare(&m).unwrap();
        let mut y = vec![0.0f32; 150];
        prepared.execute(&x, &mut y).unwrap();
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_bits,
            "Prepared::execute drifted at {budget} threads"
        );
    }
}

#[test]
fn plan_run_batch_is_thread_count_invariant() {
    // The batched fan-out spans (vector × tile-row) pairs; the chunk
    // boundaries move with the budget but the bits must not. Serial looped
    // plan.run is the oracle.
    let m = random_coo(0xDE7_000B, 180, 140, 1_500);
    let prepared = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    let acc = prepared.accelerator();

    for batch in [1usize, 2, 3, 8] {
        let xs: Vec<Vec<f32>> = (0..batch)
            .map(|j| {
                (0..140)
                    .map(|i| (((i + 5 * j) % 9) as f32) * 0.5 - 2.0)
                    .collect()
            })
            .collect();
        let mut want = vec![vec![0.75f32; 180]; batch];
        let mut oracle = acc.prepare(&prepared.encoded).unwrap();
        for (xj, yj) in xs.iter().zip(want.iter_mut()) {
            with_budget(1, || oracle.run(xj, yj).map(|_| ())).unwrap();
        }
        let want_bits: Vec<Vec<u32>> = want
            .iter()
            .map(|y| y.iter().map(|v| v.to_bits()).collect())
            .collect();

        for budget in [1usize, 2, 7] {
            let mut plan = acc.prepare(&prepared.encoded).unwrap();
            let mut ys = vec![vec![0.75f32; 180]; batch];
            with_budget(budget, || plan.run_batch(&xs, &mut ys).map(|_| ())).unwrap();
            for (j, y) in ys.iter().enumerate() {
                assert_eq!(
                    y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want_bits[j],
                    "run_batch vector {j} of {batch} drifted at {budget} threads"
                );
            }
        }
    }
}

#[test]
fn execute_batch_is_thread_count_invariant() {
    // The front-end batched path under the pipeline's own budget: serial
    // looped execute is the oracle for every budget and batch size.
    let m = random_coo(0xDE7_000C, 120, 120, 900);
    let mut serial_prepared = pipeline(Parallelism::Serial).prepare(&m).unwrap();

    for batch in [1usize, 3, 8] {
        let xs: Vec<Vec<f32>> = (0..batch)
            .map(|j| {
                (0..120)
                    .map(|i| (((i + 7 * j) % 11) as f32) * 0.25 - 1.25)
                    .collect()
            })
            .collect();
        let mut want = vec![vec![0.0f32; 120]; batch];
        for (xj, yj) in xs.iter().zip(want.iter_mut()) {
            serial_prepared.execute_into(xj, yj).unwrap();
        }
        let want_bits: Vec<Vec<u32>> = want
            .iter()
            .map(|y| y.iter().map(|v| v.to_bits()).collect())
            .collect();

        for budget in [1usize, 2, 7] {
            let mut prepared = pipeline(Parallelism::Threads(budget)).prepare(&m).unwrap();
            let mut ys = vec![vec![0.0f32; 120]; batch];
            prepared.execute_batch_into(&xs, &mut ys).unwrap();
            for (j, y) in ys.iter().enumerate() {
                assert_eq!(
                    y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want_bits[j],
                    "execute_batch vector {j} of {batch} drifted at {budget} threads"
                );
            }
        }
    }
}

#[test]
fn timings_record_the_budget() {
    let m = random_coo(0xDE7_0007, 64, 64, 200);
    let serial = pipeline(Parallelism::Serial).prepare(&m).unwrap();
    assert_eq!(serial.timings.threads, 1);
    assert!(!serial.timings.is_parallel());

    let par = pipeline(Parallelism::Threads(4)).prepare(&m).unwrap();
    if cfg!(feature = "parallel") {
        assert_eq!(par.timings.threads, 4);
        assert!(par.timings.is_parallel());
    } else {
        assert_eq!(par.timings.threads, 1);
    }
}
