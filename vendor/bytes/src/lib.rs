//! Vendored, dependency-free stand-in for the subset of the `bytes` API this
//! workspace uses for wire serialisation. The build environment has no
//! registry access, so the real crate cannot be fetched; this stub keeps the
//! call sites source-compatible. `Bytes` here is a plain owned buffer (no
//! refcounted zero-copy slicing — nothing in the workspace relies on it).

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (stub of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer (stub of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write side of a buffer (stub of `bytes::BufMut`, little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side of a buffer (stub of `bytes::Buf`, little-endian subset).
///
/// # Panics
///
/// Like upstream, all getters panic when the buffer holds too few bytes;
/// callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"SPAS");
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(-1.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"SPAS");
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
