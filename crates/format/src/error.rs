use std::fmt;

/// Errors produced when encoding or operating on the SPASM format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// Tile size must be a positive multiple of 4, at most
    /// [`crate::MAX_TILE_SIZE`].
    InvalidTileSize(u32),
    /// The portfolio cannot cover an occurring local pattern, so the matrix
    /// cannot be encoded losslessly.
    UncoverablePattern {
        /// The offending 16-bit occupancy mask.
        mask: u16,
    },
    /// A vector operand has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
        /// Which operand (`"x"` or `"y"`).
        operand: &'static str,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::InvalidTileSize(t) => write!(
                f,
                "tile size {t} must be a positive multiple of 4 and at most {}",
                crate::MAX_TILE_SIZE
            ),
            FormatError::UncoverablePattern { mask } => {
                write!(f, "portfolio cannot cover local pattern {mask:#06x}")
            }
            FormatError::DimensionMismatch {
                expected,
                actual,
                operand,
            } => {
                write!(
                    f,
                    "vector `{operand}` has length {actual}, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}
