//! Property tests for decomposition and selection invariants.

use proptest::prelude::*;
use spasm_patterns::{
    find_best_decomp, DecompositionTable, GridSize, PatternHistogram, TemplateSet,
};

fn any_set() -> impl Strategy<Value = TemplateSet> {
    (0usize..10).prop_map(TemplateSet::table_v_set)
}

proptest! {
    // Each case builds a 65536-state DP table (and Listing 1 walks 2^16
    // subsets), so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every non-empty 4x4 pattern decomposes under every Table V
    /// portfolio, covers all its cells, and satisfies the padding identity
    /// `paddings = 4·instances − popcount(pattern)`.
    #[test]
    fn decomposition_is_total_and_consistent(set in any_set(), pattern in 1u16..) {
        let table = DecompositionTable::build(&set);
        let d = table.decompose(pattern).expect("Table V portfolios cover the grid");
        let masks: Vec<u16> = set.masks().collect();
        let union = d.template_ids.iter().fold(0u16, |u, &t| u | masks[t as usize]);
        prop_assert_eq!(union & pattern, pattern);
        prop_assert_eq!(
            d.paddings,
            d.template_ids.len() as u32 * 4 - pattern.count_ones()
        );
        prop_assert_eq!(table.padding_count(pattern), Some(d.paddings));
    }

    /// The DP agrees with the paper's exhaustive Listing 1 on padding
    /// counts for arbitrary patterns (small sample per case to keep the
    /// exhaustive side affordable).
    #[test]
    fn dp_matches_listing1(set in any_set(), pattern in 1u16..) {
        let masks: Vec<u16> = set.masks().collect();
        let table = DecompositionTable::build(&set);
        let slow = find_best_decomp(pattern, &masks).unwrap();
        let fast = table.decompose(pattern).unwrap();
        prop_assert_eq!(slow.paddings, fast.paddings);
        prop_assert_eq!(slow.instances(), fast.instances());
    }

    /// A denser pattern never needs more instances than its superset
    /// (monotonicity of set cover under subset ordering is false in
    /// general, but padding ≥ 0 and ≤ 3·instances always hold).
    #[test]
    fn padding_bounds(set in any_set(), pattern in 1u16..) {
        let table = DecompositionTable::build(&set);
        let d = table.decompose(pattern).unwrap();
        prop_assert!(d.paddings <= 3 * d.instances() as u32);
        // An instance always covers at least one pattern cell.
        prop_assert!(d.instances() as u32 <= pattern.count_ones());
    }

    /// Selection always returns the candidate with minimal weighted
    /// paddings.
    #[test]
    fn selection_picks_the_minimum(
        counts in proptest::collection::vec((1u16.., 1u64..1000), 1..20)
    ) {
        let h = PatternHistogram::from_counts(GridSize::S4, counts);
        let cands = TemplateSet::table_v_candidates();
        let out = spasm_patterns::select_template_set(
            &h, &cands, spasm_patterns::selection::TopN::All);
        let min = out.candidate_paddings.iter().flatten().min().copied().unwrap();
        prop_assert_eq!(out.paddings, min);
    }

    /// Histogram totals are invariant under top-n restriction union tail.
    #[test]
    fn histogram_cdf_is_monotone(
        counts in proptest::collection::vec((1u16.., 1u64..1000), 1..30)
    ) {
        let h = PatternHistogram::from_counts(GridSize::S4, counts);
        let cdf = h.coverage_cdf();
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        if let Some(&last) = cdf.last() {
            prop_assert!((last - 1.0).abs() < 1e-9);
        }
    }
}
