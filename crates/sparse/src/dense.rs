use crate::{Coo, Index, Value};

/// A dense row-major matrix.
///
/// Used as the ground truth for correctness tests and for rendering small
/// pattern examples; not intended for large problems.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: Index,
    cols: Index,
    data: Vec<Value>,
}

impl Dense {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: Index, cols: Index) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows as usize * cols as usize],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: Index, c: Index) -> Value {
        assert!(r < self.rows && c < self.cols, "({r}, {c}) out of bounds");
        self.data[r as usize * self.cols as usize + c as usize]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get_mut(&mut self, r: Index, c: Index) -> &mut Value {
        assert!(r < self.rows && c < self.cols, "({r}, {c}) out of bounds");
        &mut self.data[r as usize * self.cols as usize + c as usize]
    }

    /// Dense matrix-vector product `y += A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv_into(&self, x: &[Value], y: &mut [Value]) {
        assert_eq!(x.len(), self.cols as usize);
        assert_eq!(y.len(), self.rows as usize);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols as usize..(r + 1) * self.cols as usize];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr += acc;
        }
    }
}

impl From<&Coo> for Dense {
    fn from(coo: &Coo) -> Self {
        let mut d = Dense::zeros(coo.rows(), coo.cols());
        for (r, c, v) in coo.iter() {
            *d.get_mut(r, c) += v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coo_and_spmv() {
        let coo = Coo::from_triplets(2, 2, vec![(0, 1, 3.0), (1, 0, 2.0)]).unwrap();
        let d = Dense::from(&coo);
        assert_eq!(d.get(0, 1), 3.0);
        assert_eq!(d.get(1, 1), 0.0);
        let mut y = vec![1.0, 1.0];
        d.spmv_into(&[2.0, 4.0], &mut y);
        assert_eq!(y, vec![13.0, 5.0]);
    }
}
