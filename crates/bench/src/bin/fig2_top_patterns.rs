//! Fig. 2: the top-8 occurring local patterns and their frequencies for
//! the cfd2 and Chebyshev4 matrices, drawn as 4×4 grids (`#` = non-zero).
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig2_top_patterns [-- --scale paper]
//! ```

use spasm_bench::{rule, scale_from_args, scale_name};
use spasm_patterns::{render_mask, GridSize, PatternHistogram};
use spasm_workloads::Workload;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 2 — top-8 local patterns ({})", scale_name(scale));
    for w in [Workload::Cfd2, Workload::Chebyshev4] {
        let m = w.generate(scale);
        let hist = PatternHistogram::analyze(&m, GridSize::S4);
        let total = hist.total_blocks().max(1);
        println!("\n{w}:");
        rule(70);
        let top = hist.top_n(8);
        let grids: Vec<Vec<String>> = top
            .iter()
            .map(|&(mask, _)| {
                render_mask(GridSize::S4, mask)
                    .lines()
                    .map(String::from)
                    .collect()
            })
            .collect();
        for row in 0..4 {
            let cells: Vec<&str> = grids.iter().map(|g| g[row].as_str()).collect();
            println!("  {}", cells.join("    "));
        }
        let shares: Vec<String> = top
            .iter()
            .map(|&(_, f)| format!("{:>4.1}%", 100.0 * f as f64 / total as f64))
            .collect();
        println!("  {}", shares.join("   "));
        println!(
            "  top-8 coverage: {:.2}% of {} occupied submatrices",
            100.0 * hist.top_n_coverage(8),
            hist.total_blocks()
        );
    }
    println!("\n(paper: cfd2's top-8 account for 48.21% of all observed patterns)");
}
