//! Differential tests: the SPASM pipeline and every storage format are
//! checked against the CSR reference kernel on randomized and adversarial
//! matrices.
//!
//! Two tolerance regimes:
//!
//! * **Pipeline vs CSR** — the simulator accumulates through 4-wide
//!   template FMAs in a different order than CSR, so results agree within
//!   `1e-3` (relative), the bound the paper's functional validation uses.
//! * **Format vs format** — every value is a small multiple of `0.25` and
//!   every `x` entry a small multiple of `0.5`, so all partial sums are
//!   exactly representable in `f32` and every format must agree with CSR
//!   *bit for bit*, regardless of accumulation order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spasm::{IntegrityPolicy, Pipeline, PipelineOptions};
use spasm_format::SpasmMatrix;
use spasm_hw::{Accelerator, Dispatch};
use spasm_sparse::{Bsr, Coo, Csc, Csr, Dia, Ell, SpMv};

/// Batch sizes every batched-equivalence assertion sweeps.
const BATCH_SIZES: [usize; 4] = [1, 2, 3, 8];

/// A family of distinct x vectors derived from the probe (multiples of
/// 0.25, so partial sums stay exactly representable).
fn probe_batch(cols: u32, batch: usize) -> Vec<Vec<f32>> {
    (0..batch)
        .map(|j| {
            (0..cols)
                .map(|i| (((i as usize + 3 * j) % 9) as f32) * 0.5 - 2.0 + j as f32 * 0.25)
                .collect()
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Asserts the prepared-plan path is *bit-identical* to the one-shot
/// simulator: same y bits (even though both differ from CSR within
/// tolerance) and an identical `ExecReport`.
fn assert_plan_matches_run(acc: &Accelerator, m: &SpasmMatrix, x: &[f32]) {
    let mut y_run = vec![0.25f32; m.rows() as usize];
    let run_report = acc.run(m, x, &mut y_run).unwrap();

    let mut plan = acc.prepare(m).unwrap();
    let mut y_plan = vec![0.25f32; m.rows() as usize];
    let plan_report = plan.run(x, &mut y_plan).unwrap().clone();

    assert_eq!(
        bits(&y_plan),
        bits(&y_run),
        "plan.run vs Accelerator::run on {}x{}",
        m.rows(),
        m.cols()
    );
    assert_eq!(plan_report, run_report, "ExecReport mismatch");

    // The batched entry point must be bit-identical to looping the
    // single-vector plan, for every batch size.
    for batch in BATCH_SIZES {
        let xs = probe_batch(m.cols(), batch);
        let mut want = vec![vec![0.25f32; m.rows() as usize]; batch];
        for (xj, yj) in xs.iter().zip(want.iter_mut()) {
            plan.run(xj, yj).unwrap();
        }
        let mut got = vec![vec![0.25f32; m.rows() as usize]; batch];
        let batch_report = plan.run_batch(&xs, &mut got).unwrap();
        assert_eq!(
            batch_report.batch.map(|b| b.vectors),
            Some(batch),
            "run_batch must stamp its batch size"
        );
        for (j, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                bits(g),
                bits(w),
                "run_batch vector {j}/{batch} vs looped plan.run on {}x{}",
                m.rows(),
                m.cols()
            );
        }
    }
}

/// Random triplets with exactly-representable values (multiples of 0.25).
fn random_coo(rng: &mut SmallRng, rows: u32, cols: u32, n_entries: usize) -> Coo {
    let t: Vec<(u32, u32, f32)> = (0..n_entries)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(1..=32) as f32 * 0.25,
            )
        })
        .collect();
    Coo::from_triplets(rows, cols, t).unwrap()
}

/// A deterministic x with entries that are small multiples of 0.5.
fn probe_x(cols: u32) -> Vec<f32> {
    (0..cols).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect()
}

/// Asserts `prepare().execute()` matches the CSR oracle within 1e-3.
fn assert_pipeline_matches_csr(m: &Coo) {
    let x = probe_x(m.cols());
    let mut want = vec![0.0f32; m.rows() as usize];
    Csr::from(m).spmv(&x, &mut want).unwrap();

    let mut prepared = Pipeline::new().prepare(m).unwrap();
    let mut got = vec![0.0f32; m.rows() as usize];
    prepared.execute(&x, &mut got).unwrap();
    for (r, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-3 * (1.0 + w.abs()),
            "row {r}: pipeline {g} vs CSR {w} ({}x{}, nnz {})",
            m.rows(),
            m.cols(),
            m.nnz()
        );
    }

    // The prepared plan must also be bit-identical to the one-shot
    // simulator on this matrix.
    assert_plan_matches_run(&prepared.accelerator(), &prepared.encoded, &x);
}

/// Asserts every format's SpMv output is bit-identical to CSR's.
fn assert_formats_match_csr_exactly(m: &Coo) {
    let x = probe_x(m.cols());
    let mut want = vec![0.0f32; m.rows() as usize];
    Csr::from(m).spmv(&x, &mut want).unwrap();
    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();

    macro_rules! check {
        ($name:literal, $fmt:expr) => {{
            let mut y = vec![0.0f32; m.rows() as usize];
            $fmt.spmv(&x, &mut y).unwrap();
            let got_bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got_bits,
                want_bits,
                "{} disagrees with CSR on {}x{} nnz {}",
                $name,
                m.rows(),
                m.cols(),
                m.nnz()
            );
        }};
    }
    check!("coo", m);
    check!("csc", Csc::from(m));
    check!("bsr2", Bsr::from_coo(m, 2).unwrap());
    check!("bsr4", Bsr::from_coo(m, 4).unwrap());
    check!("dia", Dia::from_coo(m));
    check!("ell", Ell::from_coo(m));
}

#[test]
fn random_rectangular_pipeline_matches_csr() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0001);
    for (rows, cols) in [(24, 96), (96, 24), (60, 60), (132, 40)] {
        let m = random_coo(&mut rng, rows, cols, 220);
        assert_pipeline_matches_csr(&m);
    }
}

#[test]
fn random_rectangular_formats_match_csr_exactly() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0002);
    for (rows, cols) in [(24, 96), (96, 24), (61, 47), (128, 128)] {
        let m = random_coo(&mut rng, rows, cols, 300);
        assert_formats_match_csr_exactly(&m);
    }
}

#[test]
fn empty_rows_and_columns() {
    // Entries confined to even rows and to a middle column band: odd rows
    // and the outer column bands are entirely empty.
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0003);
    let (rows, cols) = (64u32, 80u32);
    let t: Vec<(u32, u32, f32)> = (0..240)
        .map(|_| {
            (
                rng.gen_range(0..rows / 2) * 2,
                rng.gen_range(cols / 4..cols / 2),
                rng.gen_range(1..=16) as f32 * 0.25,
            )
        })
        .collect();
    let m = Coo::from_triplets(rows, cols, t).unwrap();
    assert_pipeline_matches_csr(&m);
    assert_formats_match_csr_exactly(&m);
}

#[test]
fn single_element_matrices() {
    // A lone nonzero in each corner of a rectangular matrix.
    for (r, c) in [(0, 0), (0, 50), (37, 0), (37, 50)] {
        let m = Coo::from_triplets(38, 51, vec![(r, c, 2.75)]).unwrap();
        assert_pipeline_matches_csr(&m);
        assert_formats_match_csr_exactly(&m);
    }
}

#[test]
fn dense_block_matrices() {
    // Dense 4x4 blocks scattered on a coarse grid: the pipeline's best
    // case (the dense template covers each block with zero padding).
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0004);
    let blocks = 24u32;
    let grid = 12u32; // 12x12 grid of 4x4 block slots
    let mut t = Vec::new();
    for _ in 0..blocks {
        let (br, bc) = (rng.gen_range(0..grid), rng.gen_range(0..grid));
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((br * 4 + r, bc * 4 + c, rng.gen_range(1..=8) as f32 * 0.25));
            }
        }
    }
    let n = grid * 4;
    let m = Coo::from_triplets(n, n, t).unwrap();
    assert_pipeline_matches_csr(&m);
    assert_formats_match_csr_exactly(&m);
}

#[test]
fn anti_diagonal_matrices() {
    // The worst case for row-major blocking: every 4x4 submatrix on the
    // anti-diagonal holds a single scattered entry.
    for n in [16u32, 61, 96] {
        let t: Vec<(u32, u32, f32)> = (0..n)
            .map(|i| (i, n - 1 - i, ((i % 12) + 1) as f32 * 0.25))
            .collect();
        let m = Coo::from_triplets(n, n, t).unwrap();
        assert_pipeline_matches_csr(&m);
        assert_formats_match_csr_exactly(&m);
    }
}

#[test]
fn tall_and_wide_extremes() {
    // Single-row and single-column matrices exercise the degenerate tiling
    // edges of every format.
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0005);
    let wide = random_coo(&mut rng, 1, 200, 40);
    assert_pipeline_matches_csr(&wide);
    assert_formats_match_csr_exactly(&wide);

    let tall = random_coo(&mut rng, 200, 1, 40);
    assert_pipeline_matches_csr(&tall);
    assert_formats_match_csr_exactly(&tall);
}

#[test]
fn accumulation_into_nonzero_y() {
    // `y = A·x + y` semantics: a pre-seeded y must be accumulated into,
    // identically by the pipeline (within tolerance) and all formats.
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0006);
    let m = random_coo(&mut rng, 48, 48, 160);
    let x = probe_x(48);

    let mut want = vec![1.5f32; 48];
    Csr::from(&m).spmv(&x, &mut want).unwrap();

    let mut prepared = Pipeline::new().prepare(&m).unwrap();
    let mut got = vec![1.5f32; 48];
    prepared.execute(&x, &mut got).unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
    }

    let mut via_coo = vec![1.5f32; 48];
    m.spmv(&x, &mut via_coo).unwrap();
    assert_eq!(
        via_coo.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn execute_batch_matches_looped_execute_under_every_policy() {
    // The framework's batched entry point must agree bit for bit with
    // looping execute_into — unverified and under the full verification
    // ladder alike.
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0007);
    for policy in [
        IntegrityPolicy::off(),
        IntegrityPolicy::sampled(8, 7),
        IntegrityPolicy::full(),
    ] {
        let m = random_coo(&mut rng, 72, 72, 260);
        let opts = PipelineOptions::default().integrity(policy);
        let mut prepared = Pipeline::with_options(opts).prepare(&m).unwrap();
        for batch in BATCH_SIZES {
            let xs = probe_batch(m.cols(), batch);
            let mut want = vec![vec![0.5f32; 72]; batch];
            for (xj, yj) in xs.iter().zip(want.iter_mut()) {
                prepared.execute_into(xj, yj).unwrap();
            }
            let mut got = vec![vec![0.5f32; 72]; batch];
            prepared.execute_batch_into(&xs, &mut got).unwrap();
            for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(bits(g), bits(w), "vector {j} of batch {batch}");
            }
            assert_eq!(prepared.batch_health().len(), batch);
        }
    }
}

/// Runs `f` under an explicit ambient worker budget (no-op in serial
/// builds, where every budget degenerates to one worker).
fn with_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored shim pool builder is infallible")
        .install(f)
}

/// The matrix zoo for the dispatcher differential: one representative of
/// each adversarial structure the suite above exercises individually.
fn dispatch_zoo() -> Vec<Coo> {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0009);
    let mut zoo = vec![
        random_coo(&mut rng, 96, 64, 420),
        random_coo(&mut rng, 1, 200, 40),
        random_coo(&mut rng, 200, 1, 40),
    ];
    // Anti-diagonal: scattered single-entry submatrices.
    zoo.push(
        Coo::from_triplets(
            61,
            61,
            (0..61u32)
                .map(|i| (i, 60 - i, ((i % 12) + 1) as f32 * 0.25))
                .collect(),
        )
        .unwrap(),
    );
    // Dense 4x4 blocks: long same-class instance runs.
    let mut t = Vec::new();
    for _ in 0..16 {
        let (br, bc) = (rng.gen_range(0..8u32), rng.gen_range(0..8u32));
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((br * 4 + r, bc * 4 + c, rng.gen_range(1..=8) as f32 * 0.25));
            }
        }
    }
    zoo.push(Coo::from_triplets(32, 32, t).unwrap());
    zoo
}

#[test]
fn classed_dispatch_is_bit_identical_to_per_instance() {
    // The class-bucketed kernels must reproduce the per-instance enum walk
    // bit for bit, for every batch size and thread budget. The
    // per-instance dispatcher is always scalar, so building this suite
    // with `--features simd` turns it into the SIMD-vs-scalar
    // differential; CI runs it both ways.
    for m in dispatch_zoo() {
        let n_rows = m.rows() as usize;
        let prepared = Pipeline::new().prepare(&m).unwrap();
        let acc = prepared.accelerator();
        for batch in [1usize, 2, 8, 64] {
            let xs = probe_batch(m.cols(), batch);

            // Scalar per-instance oracle, single worker.
            let mut oracle = acc.prepare(&prepared.encoded).unwrap();
            oracle.set_dispatch(Dispatch::PerInstance);
            let mut want = vec![vec![0.25f32; n_rows]; batch];
            with_budget(1, || oracle.run_batch(&xs, &mut want).map(|_| ())).unwrap();

            for budget in [1usize, 2, 7] {
                let mut plan = acc.prepare(&prepared.encoded).unwrap();
                assert_eq!(
                    plan.dispatch(),
                    Dispatch::Classed,
                    "classed dispatch must be the default"
                );
                let mut got = vec![vec![0.25f32; n_rows]; batch];
                with_budget(budget, || plan.run_batch(&xs, &mut got).map(|_| ())).unwrap();
                for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        bits(g),
                        bits(w),
                        "classed vector {j}/{batch} at {budget} threads vs per-instance \
                         on {}x{} nnz {}",
                        m.rows(),
                        m.cols(),
                        m.nnz()
                    );
                }
            }
        }
    }
}

#[cfg(feature = "fault-injection")]
#[test]
fn batched_fault_degrades_exactly_one_vector_to_csr() {
    use spasm_hw::fault::{FaultPlan, FaultSpec};

    // Faults targeted at batch vector 1: under a verifying policy with
    // fallback enabled, vector 1 must come back on the golden CSR path
    // while its siblings stay bit-identical to pristine plan output.
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0008);
    let m = random_coo(&mut rng, 96, 96, 420);
    let opts = PipelineOptions::default().integrity(IntegrityPolicy::full());
    let mut prepared = Pipeline::with_options(opts).prepare(&m).unwrap();

    let batch = 3usize;
    let xs = probe_batch(m.cols(), batch);

    // Pristine reference: looped guarded execution without faults.
    let mut pristine = vec![vec![0.0f32; 96]; batch];
    for (xj, yj) in xs.iter().zip(pristine.iter_mut()) {
        prepared.execute_into(xj, yj).unwrap();
    }

    // The golden CSR products, which the degraded vector must match.
    let mut golden = vec![vec![0.0f32; 96]; batch];
    for (xj, yj) in xs.iter().zip(golden.iter_mut()) {
        prepared.golden().spmv(xj, yj).unwrap();
    }

    let spec = FaultSpec {
        encoding_flips: 3,
        value_flips: 3,
        ..FaultSpec::default()
    };
    let n_inst = prepared.plan.n_instances();
    prepared
        .plan
        .arm_faults_for_vector(FaultPlan::seeded(0xBAD_CAFE, &spec, n_inst), 1);

    let mut ys = vec![vec![0.0f32; 96]; batch];
    prepared.execute_batch_into(&xs, &mut ys).unwrap();

    let health = prepared.batch_health().to_vec();
    assert_eq!(health.len(), batch);
    assert!(
        health[1].faults_injected > 0,
        "the targeted vector must have been struck"
    );
    for (j, h) in health.iter().enumerate() {
        if j == 1 {
            continue;
        }
        assert_eq!(h.faults_injected, 0, "vector {j} must run pristine");
        assert!(!h.fallback, "vector {j} must not fall back");
        assert_eq!(bits(&ys[j]), bits(&pristine[j]), "vector {j} bits");
    }
    if health[1].fallback {
        // Unrepairable corruption: vector 1 was recomputed on the golden
        // CSR path, bit-identical to Csr::spmv.
        assert_eq!(bits(&ys[1]), bits(&golden[1]), "fallback vector bits");
    } else {
        // The ladder repaired every strike from the pristine stream.
        assert!(health[1].tile_rows_quarantined > 0);
        assert_eq!(bits(&ys[1]), bits(&pristine[1]), "repaired vector bits");
    }
    assert!(
        prepared.report().health.faults_injected > 0,
        "aggregate health must record the strikes"
    );
}
