use std::fmt;

use spasm_format::FormatError;
use spasm_hw::{IntegrityCheck, OpcodeError};
use spasm_sparse::DeltaError;

/// Errors from running the SPASM pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The encoder rejected the matrix or tile size.
    Format(FormatError),
    /// The selected portfolio is not realisable on the VALU datapath.
    Opcode(OpcodeError),
    /// An operand has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
        /// Which operand.
        operand: &'static str,
    },
    /// One vector inside a batched call has the wrong length. Carries the
    /// batch index so a front-end coalescing independent requests can
    /// reject just the offending request instead of the whole batch.
    BatchDimensionMismatch {
        /// Index of the offending vector within the batch.
        vector: usize,
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
        /// Which operand (`"x"` or `"y"`).
        operand: &'static str,
    },
    /// The schedule exploration had nothing to explore.
    EmptySearchSpace(&'static str),
    /// A streaming update was rejected; the prepared plan is untouched.
    Delta(DeltaError),
    /// An integrity check failed and the policy forbade (or repair plus
    /// fallback could not restore) a correct result.
    Integrity {
        /// The tile row that first failed verification.
        tile_row: u32,
        /// Which check detected the corruption.
        check: IntegrityCheck,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Format(e) => write!(f, "format error: {e}"),
            PipelineError::Opcode(e) => write!(f, "opcode error: {e}"),
            PipelineError::DimensionMismatch {
                expected,
                actual,
                operand,
            } => {
                write!(
                    f,
                    "vector `{operand}` has length {actual}, expected {expected}"
                )
            }
            PipelineError::BatchDimensionMismatch {
                vector,
                expected,
                actual,
                operand,
            } => {
                write!(
                    f,
                    "batch vector {vector}: `{operand}` has length {actual}, expected {expected}"
                )
            }
            PipelineError::EmptySearchSpace(what) => {
                write!(f, "schedule exploration requires at least one {what}")
            }
            PipelineError::Delta(e) => write!(f, "rejected matrix delta: {e}"),
            PipelineError::Integrity { tile_row, check } => {
                write!(f, "integrity failure in tile row {tile_row}: {check}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Format(e) => Some(e),
            PipelineError::Opcode(e) => Some(e),
            PipelineError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for PipelineError {
    fn from(e: FormatError) -> Self {
        PipelineError::Format(e)
    }
}

impl From<DeltaError> for PipelineError {
    fn from(e: DeltaError) -> Self {
        PipelineError::Delta(e)
    }
}

impl From<OpcodeError> for PipelineError {
    fn from(e: OpcodeError) -> Self {
        PipelineError::Opcode(e)
    }
}

impl From<spasm_hw::SimError> for PipelineError {
    fn from(e: spasm_hw::SimError) -> Self {
        match e {
            spasm_hw::SimError::DimensionMismatch {
                expected,
                actual,
                operand,
            } => PipelineError::DimensionMismatch {
                expected,
                actual,
                operand,
            },
            spasm_hw::SimError::BatchDimensionMismatch {
                vector,
                expected,
                actual,
                operand,
            } => PipelineError::BatchDimensionMismatch {
                vector,
                expected,
                actual,
                operand,
            },
            spasm_hw::SimError::Opcode(o) => PipelineError::Opcode(o),
            spasm_hw::SimError::Integrity { tile_row, check } => {
                PipelineError::Integrity { tile_row, check }
            }
            _ => PipelineError::EmptySearchSpace("unknown simulator error"),
        }
    }
}
