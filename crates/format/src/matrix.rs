//! The encoded SPASM matrix: global tile directory + per-tile instance
//! streams.

use std::collections::BTreeMap;
use std::sync::Arc;

use spasm_patterns::DecompositionTable;

use crate::encoding::{PositionEncoding, MAX_TILE_SIZE, PATTERN_EDGE};
use crate::error::FormatError;
use crate::submatrix::{SubBlock, SubmatrixMap};

/// One entry of the global composition: a non-empty tile in COO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Tile row index (`matrix_row / tile_size`).
    pub tile_row: u32,
    /// Tile column index (`matrix_col / tile_size`).
    pub tile_col: u32,
    /// First instance of this tile in the stream.
    pub first_instance: usize,
    /// Number of instances belonging to this tile.
    pub n_instances: usize,
}

/// A decoded view of one template-pattern instance: the position word plus
/// its four value slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateInstance {
    /// The shared position-encoding word.
    pub encoding: PositionEncoding,
    /// Four value slots in template cell order (padding slots are 0.0).
    pub values: [f32; 4],
}

/// A sparse matrix encoded in the SPASM data format.
///
/// Construction validates the tile size and requires a decomposition table
/// whose portfolio covers every occurring local pattern; see
/// [`SpasmMatrix::encode`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpasmMatrix {
    rows: u32,
    cols: u32,
    tile_size: u32,
    nnz: usize,
    paddings: u64,
    /// Portfolio template masks in `t_idx` order (the opcode LUT content).
    templates: Vec<u16>,
    tiles: Vec<Tile>,
    encodings: Vec<PositionEncoding>,
    /// Four values per encoding, concatenated. Reference-counted so
    /// execution plans (and their clones) can share the buffer instead of
    /// copying `4 × n_instances` floats per plan; the stream is immutable
    /// after encoding, so sharing is free.
    values: Arc<[f32]>,
}

impl SpasmMatrix {
    /// Encodes a matrix into the SPASM format: decomposes every occupied
    /// submatrix with `table`, tiles the instances at `tile_size`, and
    /// emits the COO tile directory plus the position-encoded stream.
    ///
    /// Instances within a tile are ordered by `(r_idx, c_idx)`; tiles are
    /// ordered by `(tile_row, tile_col)`. The final instance of each tile
    /// carries `CE = 1`, and additionally `RE = 1` when the tile is the
    /// last of its tile row.
    ///
    /// # Errors
    ///
    /// * [`FormatError::InvalidTileSize`] unless `tile_size` is a positive
    ///   multiple of 4 at most [`MAX_TILE_SIZE`];
    /// * [`FormatError::UncoverablePattern`] if the portfolio cannot cover
    ///   an occurring local pattern.
    pub fn encode(
        map: &SubmatrixMap,
        table: &DecompositionTable,
        tile_size: u32,
    ) -> Result<Self, FormatError> {
        if tile_size == 0 || !tile_size.is_multiple_of(PATTERN_EDGE) || tile_size > MAX_TILE_SIZE {
            return Err(FormatError::InvalidTileSize(tile_size));
        }
        let subs_per_tile = tile_size / PATTERN_EDGE;
        let templates: Vec<u16> = table.template_masks().to_vec();

        // Group submatrices by tile. The map is sorted by (sub_r, sub_c),
        // which sorts by tile_row but interleaves tile columns, so collect
        // then sort tile keys.
        let mut order: Vec<usize> = (0..map.blocks().len()).collect();
        let tile_of = |i: usize| {
            let b = &map.blocks()[i];
            (b.sub_r / subs_per_tile, b.sub_c / subs_per_tile)
        };
        order.sort_by_key(|&i| {
            let (tr, tc) = tile_of(i);
            let b = &map.blocks()[i];
            (tr, tc, b.sub_r, b.sub_c)
        });

        let mut tiles: Vec<Tile> = Vec::new();
        let mut encodings: Vec<PositionEncoding> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        let mut paddings: u64 = 0;

        let mut i = 0usize;
        while i < order.len() {
            let (tile_row, tile_col) = tile_of(order[i]);
            let first_instance = encodings.len();
            while i < order.len() && tile_of(order[i]) == (tile_row, tile_col) {
                let b = &map.blocks()[order[i]];
                paddings += u64::from(Self::encode_block(
                    &templates,
                    table,
                    b,
                    subs_per_tile,
                    &mut encodings,
                    &mut values,
                )?);
                i += 1;
            }
            tiles.push(Tile {
                tile_row,
                tile_col,
                first_instance,
                n_instances: encodings.len() - first_instance,
            });
        }

        Self::stamp_boundaries(&tiles, &mut encodings);

        Ok(SpasmMatrix {
            rows: map.rows(),
            cols: map.cols(),
            tile_size,
            nnz: map.nnz(),
            paddings,
            templates,
            tiles,
            encodings,
            values: values.into(),
        })
    }

    /// Clears every CE/RE flag, then stamps CE on each tile's last
    /// instance and RE on the last tile of each tile row.
    ///
    /// Running this over any instance stream consistent with `tiles`
    /// yields exactly the flag assignment [`SpasmMatrix::encode`]
    /// produces, which is what lets [`SpasmMatrix::spliced`] copy
    /// untouched tile spans verbatim and restamp afterwards.
    fn stamp_boundaries(tiles: &[Tile], encodings: &mut [PositionEncoding]) {
        for e in encodings.iter_mut() {
            *e = PositionEncoding::new(e.c_idx(), e.r_idx(), false, false, e.t_idx());
        }
        for (t, tile) in tiles.iter().enumerate() {
            if tile.n_instances == 0 {
                continue;
            }
            let last = tile.first_instance + tile.n_instances - 1;
            let e = encodings[last];
            let row_end = t + 1 == tiles.len() || tiles[t + 1].tile_row != tile.tile_row;
            encodings[last] = PositionEncoding::new(e.c_idx(), e.r_idx(), true, row_end, e.t_idx());
        }
    }

    /// Decomposes one occupied submatrix and appends its template
    /// instances to the stream, returning the padding slots introduced.
    ///
    /// The shared inner loop of [`SpasmMatrix::encode`] and
    /// [`SpasmMatrix::spliced`]: the first template instance covering a
    /// cell carries its value; later overlapping instances pad with zero.
    fn encode_block(
        templates: &[u16],
        table: &DecompositionTable,
        b: &SubBlock,
        subs_per_tile: u32,
        encodings: &mut Vec<PositionEncoding>,
        values: &mut Vec<f32>,
    ) -> Result<u32, FormatError> {
        let d = table
            .decompose(b.mask)
            .ok_or(FormatError::UncoverablePattern { mask: b.mask })?;
        let r_idx = b.sub_r % subs_per_tile;
        let c_idx = b.sub_c % subs_per_tile;
        let mut remaining = b.mask;
        for &t_id in &d.template_ids {
            let tmask = templates[t_id as usize];
            let mut slot_values = [0.0f32; 4];
            let mut slot = 0usize;
            for bit in 0..16u16 {
                if tmask & (1 << bit) != 0 {
                    if remaining & (1 << bit) != 0 {
                        slot_values[slot] = b.values[bit as usize];
                        remaining &= !(1 << bit);
                    }
                    slot += 1;
                }
            }
            debug_assert_eq!(slot, 4, "templates have exactly 4 cells");
            encodings.push(PositionEncoding::new(c_idx, r_idx, false, false, t_id));
            values.extend_from_slice(&slot_values);
        }
        Ok(d.paddings)
    }

    /// Reassembles a matrix from pre-validated parts (wire
    /// deserialisation).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        rows: u32,
        cols: u32,
        tile_size: u32,
        nnz: usize,
        paddings: u64,
        templates: Vec<u16>,
        tiles: Vec<Tile>,
        encodings: Vec<PositionEncoding>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(values.len(), encodings.len() * 4);
        SpasmMatrix {
            rows,
            cols,
            tile_size,
            nnz,
            paddings,
            templates,
            tiles,
            encodings,
            values: values.into(),
        }
    }

    /// Number of matrix rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of matrix columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The tile edge length used for the global composition.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Non-zero count of the source matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total padded (zero-filled) value slots in the stream.
    pub fn paddings(&self) -> u64 {
        self.paddings
    }

    /// Number of template-pattern instances in the stream.
    pub fn n_instances(&self) -> usize {
        self.encodings.len()
    }

    /// Fraction of value slots that are padding.
    pub fn padding_rate(&self) -> f64 {
        let slots = self.n_instances() * 4;
        if slots == 0 {
            return 0.0;
        }
        self.paddings as f64 / slots as f64
    }

    /// The portfolio's template masks in `t_idx` order (what the hardware
    /// loads into the opcode LUT at initialisation).
    pub fn template_masks(&self) -> &[u16] {
        &self.templates
    }

    /// The global composition: non-empty tiles in COO order.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// The raw position-encoding stream.
    pub fn encodings(&self) -> &[PositionEncoding] {
        &self.encodings
    }

    /// The raw value stream (four values per encoding).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The value stream's shared buffer. Cloning the returned `Arc` (as
    /// `spasm_hw`'s execution plans do) shares the allocation instead of
    /// copying it — see `tests/alloc_free.rs` for the proof.
    pub fn shared_values(&self) -> &Arc<[f32]> {
        &self.values
    }

    /// Iterates the instances of one tile.
    pub fn tile_instances(&self, tile: &Tile) -> impl Iterator<Item = TemplateInstance> + '_ {
        let span = tile.first_instance..tile.first_instance + tile.n_instances;
        span.map(move |i| TemplateInstance {
            encoding: self.encodings[i],
            values: [
                self.values[i * 4],
                self.values[i * 4 + 1],
                self.values[i * 4 + 2],
                self.values[i * 4 + 3],
            ],
        })
    }

    /// Storage cost in bytes under the paper's accounting: 20 bytes per
    /// instance (one 32-bit position encoding + four `f32` values); the
    /// first-level tile directory is ignored as negligible, as in
    /// Section V-D.
    pub fn storage_bytes(&self) -> usize {
        20 * self.n_instances()
    }

    /// Storage cost including the tile directory (12 bytes per non-empty
    /// tile: two 32-bit tile indices plus a 32-bit instance count) — the
    /// honest full accounting.
    pub fn storage_bytes_full(&self) -> usize {
        self.storage_bytes() + 12 * self.tiles.len()
    }

    /// Functional SpMV `y += A·x` executed directly on the encoded stream.
    ///
    /// This is the software reference for the hardware simulator: the
    /// per-slot arithmetic matches what each VALU lane performs.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] on operand length
    /// mismatches.
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
        if x.len() != self.cols as usize {
            return Err(FormatError::DimensionMismatch {
                expected: self.cols as usize,
                actual: x.len(),
                operand: "x",
            });
        }
        if y.len() != self.rows as usize {
            return Err(FormatError::DimensionMismatch {
                expected: self.rows as usize,
                actual: y.len(),
                operand: "y",
            });
        }
        for tile in &self.tiles {
            let row_base = tile.tile_row * self.tile_size;
            let col_base = tile.tile_col * self.tile_size;
            for inst in self.tile_instances(tile) {
                let e = inst.encoding;
                let tmask = self.templates[e.t_idx() as usize];
                let r0 = row_base + e.r_idx() * PATTERN_EDGE;
                let c0 = col_base + e.c_idx() * PATTERN_EDGE;
                let mut slot = 0usize;
                for bit in 0..16u32 {
                    if tmask & (1 << bit) != 0 {
                        let v = inst.values[slot];
                        slot += 1;
                        if v != 0.0 {
                            let r = r0 + bit / PATTERN_EDGE;
                            let c = c0 + bit % PATTERN_EDGE;
                            y[r as usize] += v * x[c as usize];
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience wrapper computing `A·x` into a fresh zero vector.
    ///
    /// # Errors
    ///
    /// Propagates [`SpasmMatrix::spmv`]'s dimension check.
    pub fn spmv_alloc(&self, x: &[f32]) -> Result<Vec<f32>, FormatError> {
        let mut y = vec![0.0; self.rows as usize];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Finds the `(instance, slot)` carrying the stored value of cell
    /// `(r, c)`: the first instance (in decomposition order) of the
    /// cell's 4×4 submatrix whose template mask covers the cell, with
    /// the slot being the cell bit's rank within that mask.
    ///
    /// Returns `None` when the coordinate is out of bounds or no encoded
    /// tile/instance covers it. Note a covering slot can still be
    /// *padding* (value 0.0) when the cell itself holds no entry —
    /// callers distinguish via the slot value, which is only 0.0 for
    /// padding (explicit stored zeros are dropped at encode time).
    fn locate_slot(&self, r: u32, c: u32) -> Option<(usize, usize)> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        let spt = self.tile_size / PATTERN_EDGE;
        let (sub_r, sub_c) = (r / PATTERN_EDGE, c / PATTERN_EDGE);
        let key = (sub_r / spt, sub_c / spt);
        let t = self
            .tiles
            .binary_search_by_key(&key, |t| (t.tile_row, t.tile_col))
            .ok()?;
        let tile = &self.tiles[t];
        let (r_idx, c_idx) = (sub_r % spt, sub_c % spt);
        let bit = (r % PATTERN_EDGE) * PATTERN_EDGE + (c % PATTERN_EDGE);
        for i in tile.first_instance..tile.first_instance + tile.n_instances {
            let e = self.encodings[i];
            if e.r_idx() != r_idx || e.c_idx() != c_idx {
                continue;
            }
            let tmask = self.templates[e.t_idx() as usize];
            if tmask & (1 << bit) != 0 {
                let slot = (tmask & ((1u16 << bit) - 1)).count_ones() as usize;
                return Some((i, slot));
            }
        }
        None
    }

    /// The stored value at `(r, c)`, or `None` when the cell holds no
    /// entry.
    pub fn get(&self, r: u32, c: u32) -> Option<f32> {
        let (i, slot) = self.locate_slot(r, c)?;
        let v = self.values[i * 4 + slot];
        (v != 0.0).then_some(v)
    }

    /// Applies a batch of values-only patches copy-on-write and returns
    /// the new shared value buffer.
    ///
    /// The sparsity pattern, tile directory and position encodings are
    /// untouched — only the value stream is replaced, with exactly one
    /// new allocation. Existing clones of the previous buffer (held by
    /// in-flight execution plans) keep reading the old values; see
    /// `spasm_hw::ExecutionPlan::adopt_values` for the hand-over.
    ///
    /// Validation is transactional: on any error the matrix is
    /// untouched.
    ///
    /// # Errors
    ///
    /// * [`FormatError::ZeroPatch`] when a patch writes 0.0 (reserved
    ///   for padding slots — removing an entry is a structural delete);
    /// * [`FormatError::AbsentCell`] when a target cell holds no entry.
    pub fn patch_values(&mut self, entries: &[(u32, u32, f32)]) -> Result<Arc<[f32]>, FormatError> {
        let mut slots = Vec::with_capacity(entries.len());
        for &(r, c, v) in entries {
            if v == 0.0 {
                return Err(FormatError::ZeroPatch { row: r, col: c });
            }
            let (i, slot) = self
                .locate_slot(r, c)
                .ok_or(FormatError::AbsentCell { row: r, col: c })?;
            let at = i * 4 + slot;
            if self.values[at] == 0.0 {
                // Covered by a template, but only as a padding slot: the
                // cell itself holds no entry.
                return Err(FormatError::AbsentCell { row: r, col: c });
            }
            slots.push((at, v));
        }
        let mut next: Arc<[f32]> = Arc::from(&self.values[..]);
        if let Some(buf) = Arc::get_mut(&mut next) {
            for (at, v) in slots {
                buf[at] = v;
            }
        }
        self.values = Arc::clone(&next);
        Ok(next)
    }

    /// Reconstructs the occupied submatrices of one tile from its
    /// instance stream, in `(sub_r, sub_c)` order.
    ///
    /// Padding slots (value 0.0) are not part of any mask, so a
    /// reconstructed block's mask covers exactly the stored entries.
    fn decode_tile_blocks(&self, tile: &Tile) -> Vec<SubBlock> {
        let spt = self.tile_size / PATTERN_EDGE;
        let mut out: Vec<SubBlock> = Vec::new();
        for i in tile.first_instance..tile.first_instance + tile.n_instances {
            let e = self.encodings[i];
            let sub_r = tile.tile_row * spt + e.r_idx();
            let sub_c = tile.tile_col * spt + e.c_idx();
            if out.last().map(|b| (b.sub_r, b.sub_c)) != Some((sub_r, sub_c)) {
                out.push(SubBlock {
                    sub_r,
                    sub_c,
                    mask: 0,
                    values: [0.0; 16],
                });
            }
            if let Some(blk) = out.last_mut() {
                let tmask = self.templates[e.t_idx() as usize];
                let mut slot = 0usize;
                for bit in 0..16u16 {
                    if tmask & (1 << bit) != 0 {
                        let v = self.values[i * 4 + slot];
                        slot += 1;
                        if v != 0.0 {
                            blk.mask |= 1 << bit;
                            blk.values[bit as usize] = v;
                        }
                    }
                }
            }
        }
        out
    }

    /// Builds a new matrix with the given submatrices replaced,
    /// re-encoding only the touched tiles and splicing the rest of the
    /// stream through verbatim.
    ///
    /// Each replacement is the complete new state of one global 4×4
    /// submatrix (`sub_r`, `sub_c` are global submatrix coordinates); a
    /// replacement with `mask == 0` removes the submatrix. Untouched
    /// tiles contribute their encoding/value spans unchanged (then CE/RE
    /// flags are restamped globally, exactly as [`SpasmMatrix::encode`]
    /// assigns them), so the result is bit-identical to a from-scratch
    /// encode of the mutated matrix.
    ///
    /// `table` must be the decomposition table of the portfolio this
    /// matrix was encoded with (`template_masks()` equal) — the spliced
    /// instances index the same opcode LUT.
    ///
    /// # Errors
    ///
    /// [`FormatError::UncoverablePattern`] when a replacement mask is
    /// not decomposable by the portfolio; the original matrix is
    /// untouched.
    pub fn spliced(
        &self,
        replacements: &[SubBlock],
        table: &DecompositionTable,
    ) -> Result<SpasmMatrix, FormatError> {
        debug_assert_eq!(
            table.template_masks(),
            &self.templates[..],
            "spliced requires the table this matrix was encoded with"
        );
        let spt = self.tile_size / PATTERN_EDGE;
        let mut touched: BTreeMap<(u32, u32), Vec<&SubBlock>> = BTreeMap::new();
        for b in replacements {
            touched
                .entry((b.sub_r / spt, b.sub_c / spt))
                .or_default()
                .push(b);
        }

        let mut keys: Vec<(u32, u32)> = self
            .tiles
            .iter()
            .map(|t| (t.tile_row, t.tile_col))
            .chain(touched.keys().copied())
            .collect();
        keys.sort_unstable();
        keys.dedup();

        let mut tiles: Vec<Tile> = Vec::new();
        let mut encodings: Vec<PositionEncoding> = Vec::new();
        let mut values: Vec<f32> = Vec::new();

        for key in keys {
            let existing = self
                .tiles
                .binary_search_by_key(&key, |t| (t.tile_row, t.tile_col))
                .ok()
                .map(|i| &self.tiles[i]);
            let first_instance = encodings.len();
            match touched.get(&key) {
                None => {
                    // Untouched: splice the spans through verbatim.
                    let t = existing.expect("key came from the tile directory");
                    let span = t.first_instance..t.first_instance + t.n_instances;
                    encodings.extend_from_slice(&self.encodings[span.clone()]);
                    values.extend_from_slice(&self.values[span.start * 4..span.end * 4]);
                }
                Some(reps) => {
                    // Touched: merge replacements over the decoded tile
                    // and re-encode it wholesale.
                    let mut blocks: BTreeMap<(u32, u32), SubBlock> = existing
                        .map(|t| self.decode_tile_blocks(t))
                        .unwrap_or_default()
                        .into_iter()
                        .map(|b| ((b.sub_r, b.sub_c), b))
                        .collect();
                    for r in reps {
                        if r.mask == 0 {
                            blocks.remove(&(r.sub_r, r.sub_c));
                        } else {
                            blocks.insert((r.sub_r, r.sub_c), (*r).clone());
                        }
                    }
                    for b in blocks.values() {
                        Self::encode_block(
                            &self.templates,
                            table,
                            b,
                            spt,
                            &mut encodings,
                            &mut values,
                        )?;
                    }
                }
            }
            let n_instances = encodings.len() - first_instance;
            if n_instances > 0 {
                tiles.push(Tile {
                    tile_row: key.0,
                    tile_col: key.1,
                    first_instance,
                    n_instances,
                });
            }
        }

        Self::stamp_boundaries(&tiles, &mut encodings);

        // The paddings invariant: every instance has 4 slots, and a slot
        // is padding exactly when it holds 0.0 (stored zeros are never
        // encoded), so nnz is the non-zero slot count.
        let nnz = values.iter().filter(|v| **v != 0.0).count();
        let paddings = encodings.len() as u64 * 4 - nnz as u64;

        Ok(SpasmMatrix {
            rows: self.rows,
            cols: self.cols,
            tile_size: self.tile_size,
            nnz,
            paddings,
            templates: self.templates.clone(),
            tiles,
            encodings,
            values: values.into(),
        })
    }

    /// Decodes the matrix back to COO (padding slots and explicit zeros are
    /// dropped).
    pub fn to_coo(&self) -> spasm_sparse::Coo {
        let mut triplets = Vec::with_capacity(self.nnz);
        for tile in &self.tiles {
            let row_base = tile.tile_row * self.tile_size;
            let col_base = tile.tile_col * self.tile_size;
            for inst in self.tile_instances(tile) {
                let e = inst.encoding;
                let tmask = self.templates[e.t_idx() as usize];
                let r0 = row_base + e.r_idx() * PATTERN_EDGE;
                let c0 = col_base + e.c_idx() * PATTERN_EDGE;
                let mut slot = 0usize;
                for bit in 0..16u32 {
                    if tmask & (1 << bit) != 0 {
                        let v = inst.values[slot];
                        slot += 1;
                        if v != 0.0 {
                            triplets.push((r0 + bit / PATTERN_EDGE, c0 + bit % PATTERN_EDGE, v));
                        }
                    }
                }
            }
        }
        spasm_sparse::Coo::from_triplets(self.rows, self.cols, triplets)
            .expect("decoded entries are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_patterns::TemplateSet;
    use spasm_sparse::{Coo, SpMv};

    fn table() -> DecompositionTable {
        DecompositionTable::build(&TemplateSet::table_v_set(0))
    }

    fn encode(coo: &Coo, tile: u32) -> SpasmMatrix {
        SpasmMatrix::encode(&SubmatrixMap::from_coo(coo), &table(), tile).unwrap()
    }

    fn sample() -> Coo {
        let mut t = vec![];
        // dense 4x4 block at (0,0), diagonal at (8..12, 8..12), scattered
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, (r * 4 + c + 1) as f32));
            }
        }
        for i in 0..4u32 {
            t.push((8 + i, 8 + i, 1.5 * (i + 1) as f32));
        }
        t.push((14, 2, -3.0));
        Coo::from_triplets(16, 16, t).unwrap()
    }

    #[test]
    fn tile_size_validation() {
        let map = SubmatrixMap::from_coo(&sample());
        assert!(matches!(
            SpasmMatrix::encode(&map, &table(), 0),
            Err(FormatError::InvalidTileSize(0))
        ));
        assert!(matches!(
            SpasmMatrix::encode(&map, &table(), 6),
            Err(FormatError::InvalidTileSize(6))
        ));
        assert!(matches!(
            SpasmMatrix::encode(&map, &table(), MAX_TILE_SIZE + 4),
            Err(FormatError::InvalidTileSize(_))
        ));
        assert!(SpasmMatrix::encode(&map, &table(), MAX_TILE_SIZE).is_ok());
    }

    #[test]
    fn decode_round_trip() {
        let coo = sample();
        for tile in [4, 8, 16] {
            assert_eq!(encode(&coo, tile).to_coo(), coo, "tile {tile}");
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = sample();
        let x: Vec<f32> = (0..16).map(|i| (i as f32) * 0.5 - 3.0).collect();
        let mut want = vec![1.0f32; 16];
        coo.spmv(&x, &mut want).unwrap();
        for tile in [4, 8, 16] {
            let mut got = vec![1.0f32; 16];
            encode(&coo, tile).spmv(&x, &mut got).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn ce_re_flags() {
        let coo = sample();
        let m = encode(&coo, 8); // 16x16 with 8-tiles -> 2x2 tile grid
                                 // Tiles present: (0,0) block, (1,1) diag, (1,0) scattered entry.
        let coords: Vec<_> = m.tiles().iter().map(|t| (t.tile_row, t.tile_col)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (1, 1)]);
        for tile in m.tiles() {
            let insts: Vec<_> = m.tile_instances(tile).collect();
            // CE set exactly on the last instance
            for (k, inst) in insts.iter().enumerate() {
                assert_eq!(inst.encoding.ce(), k + 1 == insts.len());
            }
        }
        // RE on last tile of each tile row
        let last_of_rows: Vec<bool> = m
            .tiles()
            .iter()
            .map(|t| m.tile_instances(t).last().unwrap().encoding.re())
            .collect();
        assert_eq!(last_of_rows, vec![true, false, true]);
    }

    #[test]
    fn full_block_uses_four_instances_no_padding() {
        let mut t = vec![];
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, 1.0));
            }
        }
        let coo = Coo::from_triplets(4, 4, t).unwrap();
        let m = encode(&coo, 4);
        assert_eq!(m.n_instances(), 4);
        assert_eq!(m.paddings(), 0);
        assert_eq!(m.storage_bytes(), 80);
        assert_eq!(m.padding_rate(), 0.0);
    }

    #[test]
    fn lone_entry_pads_three_slots() {
        let coo = Coo::from_triplets(4, 4, vec![(2, 1, 5.0)]).unwrap();
        let m = encode(&coo, 4);
        assert_eq!(m.n_instances(), 1);
        assert_eq!(m.paddings(), 3);
        assert!((m.padding_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn storage_accounting() {
        let m = encode(&sample(), 8);
        assert_eq!(m.storage_bytes(), 20 * m.n_instances());
        assert_eq!(
            m.storage_bytes_full(),
            m.storage_bytes() + 12 * m.tiles().len()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = encode(&sample(), 8);
        let mut y = [0.0; 16];
        assert!(m.spmv(&[0.0; 3], &mut y).is_err());
        let mut y_short = vec![0.0; 3];
        assert!(m.spmv(&[0.0; 16], &mut y_short).is_err());
    }

    #[test]
    fn empty_matrix_encodes_empty() {
        let m = encode(&Coo::new(8, 8), 8);
        assert_eq!(m.n_instances(), 0);
        assert_eq!(m.tiles().len(), 0);
        assert_eq!(m.spmv_alloc(&[1.0; 8]).unwrap(), vec![0.0; 8]);
    }

    #[test]
    fn get_reads_stored_cells_only() {
        let m = encode(&sample(), 8);
        assert_eq!(m.get(0, 3), Some(4.0));
        assert_eq!(m.get(14, 2), Some(-3.0));
        assert_eq!(m.get(14, 3), None, "covered padding slot is not a value");
        assert_eq!(m.get(7, 7), None, "empty tile");
        assert_eq!(m.get(99, 0), None, "out of bounds");
    }

    #[test]
    fn patch_values_is_cow_and_transactional() {
        let mut m = encode(&sample(), 8);
        let before = Arc::clone(m.shared_values());
        // Invalid batch: second entry targets an absent cell. Nothing
        // changes, including the shared buffer identity.
        let err = m.patch_values(&[(0, 0, 9.0), (7, 7, 1.0)]);
        assert_eq!(err, Err(FormatError::AbsentCell { row: 7, col: 7 }));
        assert!(Arc::ptr_eq(&before, m.shared_values()));
        assert_eq!(
            m.patch_values(&[(0, 0, 0.0)]),
            Err(FormatError::ZeroPatch { row: 0, col: 0 })
        );
        // Valid batch: new buffer, old clone unchanged.
        let fresh = m.patch_values(&[(0, 0, 9.0), (14, 2, 2.5)]).unwrap();
        assert!(!Arc::ptr_eq(&before, &fresh));
        assert_eq!(m.get(0, 0), Some(9.0));
        assert_eq!(m.get(14, 2), Some(2.5));
        assert_eq!(before[0], 1.0, "in-flight clone keeps the old values");
        // Patched matrix is bit-identical to a fresh encode of the
        // mutated matrix (patches don't change the pattern).
        let mut t: Vec<_> = sample().iter().collect();
        for e in t.iter_mut() {
            if (e.0, e.1) == (0, 0) {
                e.2 = 9.0;
            }
            if (e.0, e.1) == (14, 2) {
                e.2 = 2.5;
            }
        }
        let fresh_enc = encode(&Coo::from_triplets(16, 16, t).unwrap(), 8);
        assert_eq!(m.to_bytes(), fresh_enc.to_bytes());
    }

    /// Splicing a replacement set must produce exactly the bytes a
    /// from-scratch encode of the mutated matrix produces.
    fn assert_splice_matches_fresh(
        base: &Coo,
        tile: u32,
        mutate: impl Fn(&mut Vec<(u32, u32, f32)>),
    ) {
        let m = encode(base, tile);
        let mut t: Vec<_> = base.iter().collect();
        mutate(&mut t);
        let mutated = Coo::from_triplets(base.rows(), base.cols(), t).unwrap();

        // Replacement blocks: the new state of every submatrix whose
        // content changed (including ones that became empty).
        let old_map = SubmatrixMap::from_coo(base);
        let new_map = SubmatrixMap::from_coo(&mutated);
        let mut reps: Vec<SubBlock> = Vec::new();
        for nb in new_map.blocks() {
            match old_map
                .blocks()
                .iter()
                .find(|ob| (ob.sub_r, ob.sub_c) == (nb.sub_r, nb.sub_c))
            {
                Some(ob) if ob == nb => {}
                _ => reps.push(nb.clone()),
            }
        }
        for ob in old_map.blocks() {
            if !new_map
                .blocks()
                .iter()
                .any(|nb| (nb.sub_r, nb.sub_c) == (ob.sub_r, ob.sub_c))
            {
                reps.push(SubBlock {
                    sub_r: ob.sub_r,
                    sub_c: ob.sub_c,
                    mask: 0,
                    values: [0.0; 16],
                });
            }
        }

        let spliced = m.spliced(&reps, &table()).unwrap();
        let fresh = encode(&mutated, tile);
        assert_eq!(spliced.to_bytes(), fresh.to_bytes(), "tile {tile}");
        assert_eq!(spliced.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn splice_insert_matches_fresh_encode() {
        for tile in [4, 8, 16] {
            assert_splice_matches_fresh(&sample(), tile, |t| {
                t.push((5, 5, 7.0)); // new submatrix in an existing region
                t.push((15, 0, 1.0)); // extends the scattered tile
            });
        }
    }

    #[test]
    fn splice_delete_matches_fresh_encode() {
        for tile in [4, 8, 16] {
            assert_splice_matches_fresh(&sample(), tile, |t| {
                t.retain(|&(r, c, _)| (r, c) != (14, 2)); // empties a submatrix
                t.retain(|&(r, c, _)| (r, c) != (0, 0));
            });
        }
    }

    #[test]
    fn splice_mixed_matches_fresh_encode() {
        for tile in [4, 8, 16] {
            assert_splice_matches_fresh(&sample(), tile, |t| {
                t.retain(|&(r, c, _)| (r, c) != (9, 9));
                t.push((9, 8, -1.0)); // same submatrix, different pattern
                t.push((12, 12, 4.0)); // brand-new tile region
                for e in t.iter_mut() {
                    if (e.0, e.1) == (1, 1) {
                        e.2 = -8.0; // value change routed structurally
                    }
                }
            });
        }
    }

    #[test]
    fn splice_into_empty_matrix() {
        assert_splice_matches_fresh(&Coo::new(16, 16), 8, |t| {
            t.push((3, 3, 1.0));
            t.push((10, 2, 2.0));
        });
    }

    #[test]
    fn splice_to_empty_matrix() {
        let coo = Coo::from_triplets(16, 16, vec![(2, 2, 1.0)]).unwrap();
        assert_splice_matches_fresh(&coo, 8, |t| t.clear());
    }

    #[test]
    fn splice_of_identical_replacements_is_identity() {
        // Re-submitting a submatrix's current state re-encodes its tile
        // to exactly the same bytes.
        let coo = sample();
        let m = encode(&coo, 8);
        let reps: Vec<SubBlock> = SubmatrixMap::from_coo(&coo).blocks().to_vec();
        let spliced = m.spliced(&reps, &table()).unwrap();
        assert_eq!(spliced.to_bytes(), m.to_bytes());
        assert_eq!(spliced.fingerprint(), m.fingerprint());
    }
}
