//! A validated, zero-copy view over a wire-v3 plan container.

use std::sync::Arc;

use spasm_format::{
    crc32, Header3, MatrixFingerprint, SectionEntry, SpasmMatrix, Wire3Reader, WireError,
};
use spasm_hw::{ClassRun, ExecutionPlan, FrozenTile, HwConfig, PlanParts, StableBytes, Stream};

use crate::buffer::PlanBuffer;
use crate::save::section;
use crate::StoreError;

/// A wire-v3 container parsed over a pinned [`PlanBuffer`].
///
/// [`FrozenPlan::open`] performs the cheap structural validation
/// (header CRC, directory CRC, section layout); [`FrozenPlan::into_plan`]
/// then checks every section's content CRC and reassembles an
/// [`ExecutionPlan`] whose immutable streams *borrow* the buffer —
/// nothing is copied out of the stream sections, owned allocations cover
/// only mutable scratch.
///
/// Cheap accessors ([`FrozenPlan::fingerprint`], [`FrozenPlan::header`],
/// [`FrozenPlan::config`]) work without touching the bulk sections, so a
/// catalog can identify a container and early-exit on residency before
/// paying for full validation.
#[derive(Debug)]
pub struct FrozenPlan {
    buffer: Arc<PlanBuffer>,
    header: Header3,
    entries: Vec<SectionEntry>,
}

impl FrozenPlan {
    /// Parses and structurally validates the container in `buffer`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wire`] for anything malformed: wrong magic or
    /// version, truncation, CRC mismatch on the header or directory,
    /// misaligned or overlapping sections, nonzero padding.
    pub fn open(buffer: Arc<PlanBuffer>) -> Result<FrozenPlan, StoreError> {
        let reader = Wire3Reader::parse(buffer.bytes())?;
        let header = *reader.header();
        let entries = reader.entries().to_vec();
        Ok(FrozenPlan {
            buffer,
            header,
            entries,
        })
    }

    /// The container header.
    pub fn header(&self) -> &Header3 {
        &self.header
    }

    /// Total container size in bytes (what a catalog prices as mapped).
    pub fn mapped_len(&self) -> usize {
        self.buffer.len()
    }

    /// The pinned backing buffer.
    pub fn buffer(&self) -> &Arc<PlanBuffer> {
        &self.buffer
    }

    /// The bytes of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.entry(id)
            .map(|e| &self.buffer.bytes()[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// Checks every section's CRC-32 against its directory entry.
    ///
    /// # Errors
    ///
    /// [`WireError::ChecksumMismatch`] (wrapped) on the first corrupted
    /// section.
    pub fn verify(&self) -> Result<(), StoreError> {
        for e in &self.entries {
            let bytes = &self.buffer.bytes()[e.offset as usize..(e.offset + e.len) as usize];
            let computed = crc32(bytes);
            if computed != e.crc {
                return Err(StoreError::Wire(WireError::ChecksumMismatch {
                    stored: e.crc,
                    computed,
                }));
            }
        }
        Ok(())
    }

    /// The embedded canonical v2 wire stream of the encoded matrix.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingSection`] (wrapped) when absent.
    pub fn v2_stream(&self) -> Result<&[u8], StoreError> {
        Ok(&self.buffer.bytes()[self.require(section::V2STREAM)?])
    }

    /// The matrix fingerprint, computed from the embedded v2 stream's
    /// header without decoding the matrix — a frozen plan and a v2
    /// ingest of the same matrix produce the same catalog key.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wire`] when the v2 section is absent or its header
    /// malformed.
    pub fn fingerprint(&self) -> Result<MatrixFingerprint, StoreError> {
        Ok(MatrixFingerprint::of_wire_bytes(self.v2_stream()?)?)
    }

    /// The hardware configuration the plan was frozen for.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wire`] when the META section is absent or
    /// malformed.
    pub fn config(&self) -> Result<HwConfig, StoreError> {
        let m = &self.buffer.bytes()[self.require(section::META)?];
        if m.len() < 20 {
            return Err(StoreError::Wire(WireError::Truncated {
                reading: "config section",
            }));
        }
        let u32_at = |o: usize| u32::from_le_bytes([m[o], m[o + 1], m[o + 2], m[o + 3]]);
        let mut freq = [0u8; 8];
        freq.copy_from_slice(&m[8..16]);
        let name_len = u32_at(16) as usize;
        if m.len() != 20 + name_len {
            return Err(StoreError::Wire(WireError::Inconsistent(
                "config section length disagrees with name length",
            )));
        }
        let name = std::str::from_utf8(&m[20..])
            .map_err(|_| StoreError::Wire(WireError::Inconsistent("config name not UTF-8")))?;
        Ok(HwConfig {
            name: name.to_owned(),
            num_pe_groups: u32_at(0),
            num_xvec_ch: u32_at(4),
            frequency_mhz: f64::from_bits(u64::from_le_bytes(freq)),
        })
    }

    /// Decodes the embedded v2 stream into an owned [`SpasmMatrix`]
    /// (needed to restore prepare-layer state around a mapped plan; the
    /// plan itself never requires it).
    ///
    /// # Errors
    ///
    /// [`StoreError::Wire`] when the v2 section is absent or corrupt.
    pub fn matrix(&self) -> Result<SpasmMatrix, StoreError> {
        Ok(SpasmMatrix::from_bytes(self.v2_stream()?)?)
    }

    /// Verifies every section CRC, then reassembles an [`ExecutionPlan`]
    /// whose eight immutable streams borrow this container's buffer.
    ///
    /// The returned plan executes bit-identically to one freshly
    /// prepared from the same matrix and configuration; only mutable
    /// scratch (operand staging, partial sums) is allocated.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wire`] for container-level corruption,
    /// [`StoreError::Sim`] when the sections do not assemble into a
    /// structurally consistent plan. Never panics on hostile input.
    pub fn into_plan(self) -> Result<ExecutionPlan, StoreError> {
        self.verify()?;

        let masks_bytes = &self.buffer.bytes()[self.require(section::TEMPLATES)?];
        if !masks_bytes.len().is_multiple_of(2)
            || masks_bytes.len() / 2 != self.header.n_templates as usize
        {
            return Err(StoreError::Wire(WireError::Inconsistent(
                "template section length disagrees with header",
            )));
        }
        let template_masks: Vec<u16> = masks_bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();

        let tile_bytes = &self.buffer.bytes()[self.require(section::TILES)?];
        if !tile_bytes.len().is_multiple_of(20)
            || tile_bytes.len() / 20 != self.header.n_tiles as usize
        {
            return Err(StoreError::Wire(WireError::Inconsistent(
                "tile section length disagrees with header",
            )));
        }
        let mut tiles = Vec::with_capacity(self.header.n_tiles as usize);
        for t in tile_bytes.chunks_exact(20) {
            let mut first = [0u8; 8];
            first.copy_from_slice(&t[8..16]);
            let first = usize::try_from(u64::from_le_bytes(first)).map_err(|_| {
                StoreError::Wire(WireError::Inconsistent("tile first_instance overflows"))
            })?;
            tiles.push(FrozenTile {
                row: u32::from_le_bytes([t[0], t[1], t[2], t[3]]),
                col: u32::from_le_bytes([t[4], t[5], t[6], t[7]]),
                first_instance: first,
                n_instances: u32::from_le_bytes([t[16], t[17], t[18], t[19]]) as usize,
            });
        }

        let n = usize::try_from(self.header.n_instances)
            .map_err(|_| StoreError::Wire(WireError::Inconsistent("instance count overflows")))?;
        let x_base = self.map_stream::<u32>(section::XBASE, n)?;
        let y_base = self.map_stream::<u32>(section::YBASE, n)?;
        let op_idx = self.map_stream::<u8>(section::OPIDX, n)?;
        let values = self.map_stream::<f32>(section::VALUES, 4 * n)?;
        let bucket_idx = self.map_stream::<u32>(section::BUCKET_IDX, n)?;
        let class_runs = self.map_any::<ClassRun>(section::CLASS_RUNS)?;
        let block_runs = self.map_any::<u32>(section::BLOCK_RUNS)?;
        let row_blocks = self.map_any::<u32>(section::ROW_BLOCKS)?;

        // Fault-injection builds re-decode the raw position words, which
        // live only in the embedded v2 stream; plain builds skip the
        // decode (and its allocation) entirely.
        #[cfg(feature = "fault-injection")]
        let encodings = Some(
            self.matrix()?
                .encodings()
                .iter()
                .map(|e| e.bits())
                .collect(),
        );
        #[cfg(not(feature = "fault-injection"))]
        let encodings = None;

        let parts = PlanParts {
            config: self.config()?,
            rows: self.header.rows,
            cols: self.header.cols,
            tile_size: self.header.tile_size,
            nnz: self.header.nnz,
            template_masks,
            tiles,
            x_base,
            y_base,
            op_idx,
            values,
            bucket_idx,
            class_runs,
            block_runs,
            row_blocks,
            encodings,
        };
        Ok(ExecutionPlan::from_parts(parts)?)
    }

    fn entry(&self, id: u32) -> Option<&SectionEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    fn require(&self, id: u32) -> Result<std::ops::Range<usize>, StoreError> {
        let e = self
            .entry(id)
            .ok_or(StoreError::Wire(WireError::MissingSection { id }))?;
        Ok(e.offset as usize..(e.offset + e.len) as usize)
    }

    /// Maps section `id` as a typed stream of exactly `expect` records.
    fn map_stream<T>(&self, id: u32, expect: usize) -> Result<Stream<T>, StoreError> {
        let s = self.map_any::<T>(id)?;
        if s.len() != expect {
            return Err(StoreError::Wire(WireError::Inconsistent(
                "stream section length disagrees with header",
            )));
        }
        Ok(s)
    }

    /// Maps section `id` as a typed stream, length taken from the
    /// section itself (prefix tables whose length the plan validates).
    fn map_any<T>(&self, id: u32) -> Result<Stream<T>, StoreError> {
        let range = self.require(id)?;
        let size = std::mem::size_of::<T>();
        if !range.len().is_multiple_of(size) {
            return Err(StoreError::Wire(WireError::Inconsistent(
                "section length is not a whole number of records",
            )));
        }
        let keep: Arc<dyn StableBytes> = self.buffer.clone();
        // SAFETY: sections start 64-byte aligned (enforced by
        // Wire3Reader::parse), which satisfies any alignment the stream
        // record types need; the range is in-bounds per the directory
        // validation; all record types are plain-old-data (u8/u32/f32
        // and the repr(C) ClassRun of three u32s) with no invalid bit
        // patterns.
        Ok(unsafe { Stream::mapped(keep, range.start, range.len() / size) })
    }
}
