//! Wire format v3: an alignment-aware, CRC-covered section container.
//!
//! Versions 1 and 2 of the SPASM wire format serialise the *encoding* (the
//! tile directory and position-encoding stream) and must be fully decoded
//! and re-prepared into an execution plan on every load. Version 3 instead
//! freezes the *plan*: a fixed 64-byte header, a section directory, and a
//! sequence of 64-byte-aligned sections whose byte content is exactly the
//! plan's structure-of-arrays form — so a reader can back an execution
//! plan with borrowed views into the (possibly memory-mapped) buffer,
//! copying nothing.
//!
//! This module owns only the *container*: layout, alignment, and
//! corruption detection. What the sections mean — ids, record layouts,
//! and how they reassemble into a plan — belongs to the `spasm-store`
//! crate, keeping this crate free of any dependency on the hardware
//! model.
//!
//! ```text
//! offset 0   ┌────────────────────────────────────────────┐
//!            │ header (64 B)                              │
//!            │   magic "SPSM" · version=3 · rows · cols   │
//!            │   tile_size · n_templates · nnz · paddings │
//!            │   n_instances · n_tiles · n_sections       │
//!            │   directory_crc · header_crc               │
//! offset 64  ├────────────────────────────────────────────┤
//!            │ directory: n_sections × 24 B entries       │
//!            │   { id u32 · section_crc u32 ·             │
//!            │     offset u64 · len u64 }                 │
//!            ├─── zero padding to a 64 B boundary ────────┤
//!            │ section bytes (each starts 64-B aligned,   │
//!            │ ascending, non-overlapping; gaps zeroed)   │
//!            ├─── zero padding to a 64 B boundary ────────┤
//!            └────────────────────────────────────────────┘ exact end
//! ```
//!
//! Corruption coverage is total: the header CRC covers every header byte,
//! the directory CRC covers every directory byte (including each
//! section's CRC), each section CRC covers its bytes, all padding must be
//! zero, and the buffer length must equal the aligned end exactly — so
//! any bit flip anywhere in a v3 buffer is detected by
//! [`Wire3Reader::parse`] + [`Wire3Reader::verify_sections`] as a typed
//! [`WireError`], never a panic and never a silent wrong answer.

use crate::crc::crc32;
use crate::serialize::{WireError, MAGIC};

/// Wire-format version written by [`Wire3Writer`].
pub const VERSION3: u32 = 3;

/// Alignment, in bytes, of every section start (and of the total length).
pub const ALIGN3: usize = 64;

/// Fixed v3 header size in bytes.
pub const HEADER3_BYTES: usize = 64;

/// Size of one section-directory entry in bytes.
pub const DIR_ENTRY_BYTES: usize = 24;

/// `true` when `bytes` carries the SPASM magic and declares version 3 —
/// the cheap dispatch peek an ingest path uses to route between the
/// v1/v2 decoder and the v3 mapper.
pub fn is_v3(bytes: &[u8]) -> bool {
    bytes.len() >= 8
        && bytes[..4] == MAGIC
        && u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) == VERSION3
}

/// The fixed v3 header: matrix shape and stream counts, plus the section
/// count. CRCs are computed by the writer and checked by the reader; they
/// are not part of this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header3 {
    /// Matrix rows.
    pub rows: u32,
    /// Matrix columns.
    pub cols: u32,
    /// Tile edge length of the encoding.
    pub tile_size: u32,
    /// Templates in the portfolio.
    pub n_templates: u32,
    /// Structural nonzeros of the original matrix.
    pub nnz: u64,
    /// Zero value slots added by the template decomposition.
    pub paddings: u64,
    /// Template instances in the stream.
    pub n_instances: u64,
    /// Tiles in the directory.
    pub n_tiles: u32,
    /// Sections in the container.
    pub n_sections: u32,
}

/// One section-directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (semantics owned by the caller, e.g. `spasm-store`).
    pub id: u32,
    /// CRC-32 over the section's bytes.
    pub crc: u32,
    /// Byte offset of the section in the buffer (64-byte aligned).
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
}

/// Rounds `n` up to the next multiple of [`ALIGN3`].
fn align_up(n: usize) -> usize {
    n.div_ceil(ALIGN3) * ALIGN3
}

/// Serialises a v3 container: collect sections, then [`Wire3Writer::finish`]
/// lays them out aligned, stamps every CRC and returns the buffer.
#[derive(Debug)]
pub struct Wire3Writer {
    header: Header3,
    sections: Vec<(u32, Vec<u8>)>,
}

impl Wire3Writer {
    /// Starts a container with the given header (`n_sections` is
    /// overwritten by [`Wire3Writer::finish`] with the actual count).
    pub fn new(header: Header3) -> Self {
        Wire3Writer {
            header,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Ids must be unique; sections are laid out in
    /// insertion order.
    pub fn section(&mut self, id: u32, bytes: &[u8]) {
        self.sections.push((id, bytes.to_vec()));
    }

    /// Lays out the container and stamps all CRCs.
    pub fn finish(mut self) -> Vec<u8> {
        let n_sections = self.sections.len();
        self.header.n_sections = n_sections as u32;
        let dir_end = HEADER3_BYTES + n_sections * DIR_ENTRY_BYTES;

        // Assign aligned offsets.
        let mut offsets = Vec::with_capacity(n_sections);
        let mut cursor = align_up(dir_end);
        for (_, bytes) in &self.sections {
            offsets.push(cursor);
            cursor = align_up(cursor + bytes.len());
        }
        let total = cursor.max(align_up(dir_end));

        let mut buf = vec![0u8; total];
        // Sections (gaps stay zero).
        for ((_, bytes), &off) in self.sections.iter().zip(&offsets) {
            buf[off..off + bytes.len()].copy_from_slice(bytes);
        }
        // Directory.
        for (k, ((id, bytes), &off)) in self.sections.iter().zip(&offsets).enumerate() {
            let e = HEADER3_BYTES + k * DIR_ENTRY_BYTES;
            buf[e..e + 4].copy_from_slice(&id.to_le_bytes());
            buf[e + 4..e + 8].copy_from_slice(&crc32(bytes).to_le_bytes());
            buf[e + 8..e + 16].copy_from_slice(&(off as u64).to_le_bytes());
            buf[e + 16..e + 24].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
        }
        let directory_crc = crc32(&buf[HEADER3_BYTES..dir_end]);

        // Header.
        let h = &self.header;
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..8].copy_from_slice(&VERSION3.to_le_bytes());
        buf[8..12].copy_from_slice(&h.rows.to_le_bytes());
        buf[12..16].copy_from_slice(&h.cols.to_le_bytes());
        buf[16..20].copy_from_slice(&h.tile_size.to_le_bytes());
        buf[20..24].copy_from_slice(&h.n_templates.to_le_bytes());
        buf[24..32].copy_from_slice(&h.nnz.to_le_bytes());
        buf[32..40].copy_from_slice(&h.paddings.to_le_bytes());
        buf[40..48].copy_from_slice(&h.n_instances.to_le_bytes());
        buf[48..52].copy_from_slice(&h.n_tiles.to_le_bytes());
        buf[52..56].copy_from_slice(&h.n_sections.to_le_bytes());
        buf[56..60].copy_from_slice(&directory_crc.to_le_bytes());
        let header_crc = crc32(&buf[..60]);
        buf[60..64].copy_from_slice(&header_crc.to_le_bytes());
        buf
    }
}

/// A parsed, structurally validated view over a v3 buffer. Borrows the
/// buffer; nothing is copied.
///
/// [`Wire3Reader::parse`] checks the header CRC, the directory CRC, the
/// section layout (alignment, ascending non-overlap, exact total length)
/// and that every padding byte is zero. Section *content* CRCs are
/// checked separately by [`Wire3Reader::verify_sections`], so callers
/// that only need the header can stay cheap.
#[derive(Debug)]
pub struct Wire3Reader<'a> {
    buf: &'a [u8],
    header: Header3,
    entries: Vec<SectionEntry>,
}

impl<'a> Wire3Reader<'a> {
    /// Parses and structurally validates `buf` as a v3 container.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for anything malformed — wrong magic or
    /// version, truncation, CRC mismatches, misaligned or overlapping
    /// sections, nonzero padding, or trailing bytes. Never panics.
    pub fn parse(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < HEADER3_BYTES {
            return Err(WireError::Truncated { reading: "header" });
        }
        if buf[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(4);
        if version != VERSION3 {
            return Err(WireError::BadVersion(version));
        }
        let stored = u32_at(60);
        let computed = crc32(&buf[..60]);
        if stored != computed {
            return Err(WireError::ChecksumMismatch { stored, computed });
        }
        let header = Header3 {
            rows: u32_at(8),
            cols: u32_at(12),
            tile_size: u32_at(16),
            n_templates: u32_at(20),
            nnz: u64_at(24),
            paddings: u64_at(32),
            n_instances: u64_at(40),
            n_tiles: u32_at(48),
            n_sections: u32_at(52),
        };
        let n_sections = header.n_sections as usize;
        let dir_end = (HEADER3_BYTES as u128) + (n_sections as u128) * (DIR_ENTRY_BYTES as u128);
        if dir_end > buf.len() as u128 {
            return Err(WireError::Truncated {
                reading: "section directory",
            });
        }
        let dir_end = dir_end as usize;
        let stored = u32_at(56);
        let computed = crc32(&buf[HEADER3_BYTES..dir_end]);
        if stored != computed {
            return Err(WireError::ChecksumMismatch { stored, computed });
        }

        let mut entries = Vec::with_capacity(n_sections);
        let mut prev_end = dir_end as u64;
        for k in 0..n_sections {
            let e = HEADER3_BYTES + k * DIR_ENTRY_BYTES;
            let entry = SectionEntry {
                id: u32_at(e),
                crc: u32_at(e + 4),
                offset: u64_at(e + 8),
                len: u64_at(e + 16),
            };
            if !entry.offset.is_multiple_of(ALIGN3 as u64) {
                return Err(WireError::Inconsistent("section offset misaligned"));
            }
            if entry.offset < prev_end {
                return Err(WireError::Inconsistent(
                    "section offsets must ascend without overlap",
                ));
            }
            let end = entry
                .offset
                .checked_add(entry.len)
                .ok_or(WireError::Inconsistent("section extent overflows"))?;
            if end > buf.len() as u64 {
                return Err(WireError::Truncated { reading: "section" });
            }
            if entries.iter().any(|p: &SectionEntry| p.id == entry.id) {
                return Err(WireError::Inconsistent("duplicate section id"));
            }
            // Padding between the previous section (or the directory) and
            // this one must be zero.
            if buf[prev_end as usize..entry.offset as usize]
                .iter()
                .any(|&b| b != 0)
            {
                return Err(WireError::Inconsistent("nonzero padding bytes"));
            }
            prev_end = end;
            entries.push(entry);
        }
        // Exact total length: the aligned end of the last section (or of
        // the directory), with zero padding to it.
        let total = align_up(prev_end as usize);
        if buf.len() != total {
            return Err(WireError::Inconsistent(
                "buffer length disagrees with layout",
            ));
        }
        if buf[prev_end as usize..].iter().any(|&b| b != 0) {
            return Err(WireError::Inconsistent("nonzero padding bytes"));
        }
        Ok(Wire3Reader {
            buf,
            header,
            entries,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header3 {
        &self.header
    }

    /// The section directory, in layout order.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// The bytes of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| &self.buf[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// Byte offset of section `id` within the buffer, if present.
    pub fn section_offset(&self, id: u32) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.offset as usize)
    }

    /// Checks every section's CRC-32 against its directory entry.
    ///
    /// # Errors
    ///
    /// [`WireError::ChecksumMismatch`] on the first disagreeing section.
    pub fn verify_sections(&self) -> Result<(), WireError> {
        for e in &self.entries {
            let bytes = &self.buf[e.offset as usize..(e.offset + e.len) as usize];
            let computed = crc32(bytes);
            if computed != e.crc {
                return Err(WireError::ChecksumMismatch {
                    stored: e.crc,
                    computed,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header3 {
        Header3 {
            rows: 100,
            cols: 80,
            tile_size: 32,
            n_templates: 3,
            nnz: 250,
            paddings: 30,
            n_instances: 70,
            n_tiles: 9,
            n_sections: 0,
        }
    }

    fn sample_container() -> Vec<u8> {
        let mut w = Wire3Writer::new(sample_header());
        w.section(1, &[1, 2, 3, 4, 5]);
        w.section(7, &[0xAA; 130]);
        w.section(2, b"");
        w.finish()
    }

    #[test]
    fn round_trip_preserves_header_and_sections() {
        let buf = sample_container();
        assert!(is_v3(&buf));
        assert_eq!(buf.len() % ALIGN3, 0);
        let r = Wire3Reader::parse(&buf).unwrap();
        r.verify_sections().unwrap();
        let h = r.header();
        assert_eq!(h.rows, 100);
        assert_eq!(h.n_sections, 3);
        assert_eq!(r.section(1).unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(r.section(7).unwrap(), &[0xAA; 130]);
        assert_eq!(r.section(2).unwrap(), b"");
        assert!(r.section(99).is_none());
        for e in r.entries() {
            assert_eq!(e.offset % ALIGN3 as u64, 0);
        }
        // Zero-copy: the section slice points into the buffer.
        let off = r.section_offset(7).unwrap();
        assert_eq!(r.section(7).unwrap().as_ptr(), buf[off..].as_ptr());
    }

    #[test]
    fn v2_streams_are_not_v3() {
        assert!(!is_v3(b"SPSM\x02\x00\x00\x00rest"));
        assert!(!is_v3(b"SPSM"));
        assert!(!is_v3(b"XXXX\x03\x00\x00\x00"));
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let buf = sample_container();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut m = buf.clone();
                m[byte] ^= 1 << bit;
                let verdict = Wire3Reader::parse(&m).and_then(|r| r.verify_sections());
                assert!(
                    verdict.is_err(),
                    "flip at {byte}:{bit} survived parse+verify"
                );
            }
        }
    }

    #[test]
    fn truncation_and_extension_rejected() {
        let buf = sample_container();
        for cut in [0, 4, 63, 64, buf.len() - 1] {
            assert!(Wire3Reader::parse(&buf[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = buf.clone();
        extended.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            Wire3Reader::parse(&extended),
            Err(WireError::Inconsistent(
                "buffer length disagrees with layout"
            )),
        ));
    }

    #[test]
    fn empty_container_is_valid() {
        let buf = Wire3Writer::new(sample_header()).finish();
        assert_eq!(buf.len(), HEADER3_BYTES);
        let r = Wire3Reader::parse(&buf).unwrap();
        assert_eq!(r.entries().len(), 0);
        r.verify_sections().unwrap();
    }
}
