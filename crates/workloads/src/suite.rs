//! The 20-matrix workload suite of Table II, as seeded synthetic
//! generators.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spasm_sparse::Coo;

use crate::gen::{
    anti_diag_stencil, fem_blocks, mixed_fragments, planted_patterns, random_uniform, staircase,
    stencil, FragmentMix,
};

/// Common 4×4 occupancy masks used to express Table II's top-8 pattern
/// shares (bit `r·4 + c`).
mod masks {
    /// Full 4×4 block.
    pub const FULL: u16 = 0xFFFF;
    /// 2×2 quadrant blocks.
    pub const B00: u16 = 0x0033;
    pub const B02: u16 = 0x00CC;
    pub const B20: u16 = 0x3300;
    pub const B22: u16 = 0xCC00;
    /// Full rows / columns.
    pub const ROW0: u16 = 0x000F;
    pub const ROW1: u16 = 0x00F0;
    pub const COL0: u16 = 0x1111;
    pub const COL1: u16 = 0x2222;
    /// Diagonal and anti-diagonal, full and halves.
    pub const DIAG: u16 = 0x8421;
    pub const DIAG_LO: u16 = 0x0021; // (0,0),(1,1)
    pub const DIAG_HI: u16 = 0x8400; // (2,2),(3,3)
    pub const ANTI: u16 = 0x1248;
    pub const ANTI_LO: u16 = 0x0048; // (0,3),(1,2)
    pub const ANTI_HI: u16 = 0x1200; // (2,1),(3,0)
    /// Small fragments.
    pub const PAIR_H: u16 = 0x0003;
    pub const PAIR_V: u16 = 0x0011;
    pub const SINGLE: u16 = 0x0001;
    /// Upper/lower triangles (inclusive) of the 4×4 block — FEM
    /// half-stencils.
    pub const TRI_U: u16 = 0x8CEF; // cells with c >= r
    pub const TRI_L: u16 = 0xF731; // cells with c <= r
}

/// Generation scale.
///
/// Scaling preserves the *mean row degree* (`nnz / rows`) of the original —
/// the structural invariant of FEM stencils and graph matrices — so
/// local-pattern statistics stay representative while tests run in
/// milliseconds. (Scaling density instead would starve the stencil
/// generators, which need at least one entry per row per diagonal.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// ~1/1024 of the paper's non-zeros. For unit/integration tests.
    Small,
    /// ~1/64 of the paper's non-zeros. Default for benches.
    #[default]
    Medium,
    /// Full Table II dimensions. Minutes of generation for the largest
    /// matrices; used for the paper-scale runs.
    Paper,
}

impl Scale {
    /// Divisor applied to the matrix edge length.
    pub fn edge_divisor(self) -> u32 {
        match self {
            Scale::Small => 32,
            Scale::Medium => 8,
            Scale::Paper => 1,
        }
    }
}

/// One workload of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the matrix names
pub enum Workload {
    Mycielskian14,
    Ex11,
    Raefsky3,
    Mip1,
    Rim,
    ThreeDTube,
    Bbmat,
    Chebyshev4,
    Goodwin054,
    X104,
    Cfd2,
    MlLaplace,
    Af0K101,
    PFlow742,
    C73,
    AfShell10,
    TmtSym,
    TmtUnsym,
    T2em,
    StormG21000,
}

/// The structural family a workload's generator belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureClass {
    /// Uniform random (graph matrices).
    RandomGraph,
    /// Aligned dense 4×4 FEM blocks (one dominant full-block pattern).
    AlignedFemBlocks,
    /// Unaligned FEM blocks in a band.
    FemBlocks,
    /// Banded stencil along fixed diagonals.
    Stencil,
    /// Anti-diagonal stencil.
    AntiDiagStencil,
    /// Staircase LP structure.
    Staircase,
    /// Mixed structured fragments.
    Mixed,
}

/// Static description of one workload: paper-reported statistics plus the
/// generator recipe.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Square edge length at paper scale.
    pub n: u32,
    /// Table II non-zero count.
    pub nnz: usize,
    /// Table II density.
    pub density: f64,
    /// Table II application domain.
    pub domain: &'static str,
    /// Generator family.
    pub class: StructureClass,
    /// Deterministic seed.
    pub seed: u64,
}

impl Workload {
    /// The top-8 local-pattern shares Table II reports for this workload,
    /// expressed over plausible domain masks, or `None` for the workloads
    /// whose global structure (stencil diagonals, aligned FEM blocks,
    /// staircase, random graph) already induces the right histogram.
    ///
    /// Shares are fractions of occupied 4×4 submatrices, matching the
    /// paper's percentage rows; mask pairs with equal shares use
    /// transposed shapes, as symmetric matrices produce.
    fn table_ii_shares(self) -> Option<&'static [(u16, f64)]> {
        use masks::*;
        match self {
            Workload::Ex11 => Some(&[
                (FULL, 0.141),
                (TRI_U, 0.032),
                (TRI_L, 0.032),
                (B00, 0.024),
                (B22, 0.024),
                (ROW0, 0.022),
                (COL0, 0.022),
                (DIAG, 0.022),
            ]),
            Workload::Mip1 => Some(&[
                (B00, 0.041),
                (B22, 0.041),
                (ROW0, 0.041),
                (COL0, 0.041),
                (ROW1, 0.041),
                (COL1, 0.041),
                (PAIR_H, 0.041),
                (PAIR_V, 0.041),
            ]),
            Workload::Rim => Some(&[
                (FULL, 0.055),
                (ROW0, 0.038),
                (COL0, 0.037),
                (B00, 0.032),
                (B22, 0.030),
                (PAIR_H, 0.029),
                (PAIR_V, 0.028),
                (DIAG_LO, 0.026),
            ]),
            Workload::ThreeDTube => Some(&[
                (TRI_U, 0.052),
                (TRI_L, 0.052),
                (B00, 0.024),
                (B22, 0.024),
                (B02, 0.024),
                (B20, 0.024),
                (ROW0, 0.021),
                (COL0, 0.021),
            ]),
            Workload::Bbmat => Some(&[
                (FULL, 0.309),
                (TRI_U, 0.184),
                (TRI_L, 0.159),
                (B00, 0.094),
                (B22, 0.071),
                (ROW0, 0.029),
                (COL0, 0.023),
                (SINGLE, 0.017),
            ]),
            Workload::Chebyshev4 => Some(&[
                (FULL, 0.205),
                (ROW0, 0.083),
                (ROW1, 0.081),
                (B00, 0.062),
                (B22, 0.061),
                (COL0, 0.047),
                (COL1, 0.047),
                (PAIR_H, 0.047),
            ]),
            Workload::Goodwin054 => Some(&[
                (B00, 0.043),
                (TRI_U, 0.041),
                (TRI_L, 0.041),
                (ROW0, 0.032),
                (COL0, 0.031),
                (DIAG, 0.031),
                (PAIR_H, 0.027),
                (PAIR_V, 0.025),
            ]),
            Workload::X104 => Some(&[
                (FULL, 0.487),
                (TRI_U, 0.111),
                (TRI_L, 0.111),
                (B00, 0.099),
                (B22, 0.099),
                (ROW0, 0.017),
                (COL0, 0.017),
                (DIAG, 0.017),
            ]),
            Workload::Cfd2 => Some(&[
                (DIAG, 0.091),
                (TRI_U, 0.090),
                (TRI_L, 0.090),
                (B00, 0.064),
                (B22, 0.064),
                (PAIR_H, 0.037),
                (PAIR_V, 0.037),
                (SINGLE, 0.031),
            ]),
            Workload::MlLaplace => Some(&[
                (FULL, 0.293),
                (TRI_U, 0.131),
                (TRI_L, 0.131),
                (B00, 0.123),
                (B22, 0.123),
                (ROW0, 0.041),
                (COL0, 0.040),
                (DIAG, 0.025),
            ]),
            Workload::Af0K101 => Some(&[
                (FULL, 0.313),
                (B00, 0.045),
                (B22, 0.045),
                (B02, 0.045),
                (TRI_U, 0.030),
                (TRI_L, 0.030),
                (DIAG, 0.030),
            ]),
            Workload::PFlow742 => Some(&[
                (DIAG, 0.028),
                (TRI_U, 0.022),
                (TRI_L, 0.022),
                (PAIR_H, 0.019),
                (PAIR_V, 0.019),
                (DIAG_LO, 0.018),
                (DIAG_HI, 0.018),
                (SINGLE, 0.017),
            ]),
            Workload::C73 => Some(&[
                (ANTI, 0.105),
                (ANTI_LO, 0.057),
                (ANTI_HI, 0.057),
                (SINGLE, 0.052),
                (PAIR_H, 0.043),
                (PAIR_V, 0.043),
                (DIAG_LO, 0.041),
            ]),
            Workload::AfShell10 => Some(&[
                (FULL, 0.313),
                (B00, 0.045),
                (B22, 0.045),
                (B02, 0.045),
                (TRI_U, 0.037),
                (TRI_L, 0.037),
                (DIAG, 0.037),
            ]),
            _ => None,
        }
    }

    /// All 20 workloads in Table II order (descending density).
    pub const ALL: [Workload; 20] = [
        Workload::Mycielskian14,
        Workload::Ex11,
        Workload::Raefsky3,
        Workload::Mip1,
        Workload::Rim,
        Workload::ThreeDTube,
        Workload::Bbmat,
        Workload::Chebyshev4,
        Workload::Goodwin054,
        Workload::X104,
        Workload::Cfd2,
        Workload::MlLaplace,
        Workload::Af0K101,
        Workload::PFlow742,
        Workload::C73,
        Workload::AfShell10,
        Workload::TmtSym,
        Workload::TmtUnsym,
        Workload::T2em,
        Workload::StormG21000,
    ];

    /// The workload's static description.
    pub fn spec(self) -> WorkloadSpec {
        use StructureClass::*;
        let (name, n, nnz, density, domain, class) = match self {
            Workload::Mycielskian14 => (
                "mycielskian14",
                12_287,
                3_700_000,
                2.45e-2,
                "Graph problem",
                RandomGraph,
            ),
            Workload::Ex11 => ("ex11", 16_614, 1_100_000, 3.97e-3, "CFD", FemBlocks),
            Workload::Raefsky3 => (
                "raefsky3",
                21_200,
                1_488_768,
                3.31e-3,
                "CFD",
                AlignedFemBlocks,
            ),
            Workload::Mip1 => (
                "mip1",
                66_463,
                10_400_000,
                2.35e-3,
                "optimization problem",
                Mixed,
            ),
            Workload::Rim => ("rim", 22_560, 1_010_000, 1.99e-3, "CFD", Mixed),
            Workload::ThreeDTube => ("3dtube", 45_330, 3_240_000, 1.58e-3, "CFD", FemBlocks),
            Workload::Bbmat => ("bbmat", 38_744, 1_770_000, 1.18e-3, "CFD", Mixed),
            Workload::Chebyshev4 => (
                "Chebyshev4",
                68_121,
                5_380_000,
                1.16e-3,
                "structural problem",
                Mixed,
            ),
            Workload::Goodwin054 => ("Goodwin_054", 32_510, 1_030_000, 9.75e-4, "CFD", Mixed),
            Workload::X104 => (
                "x104",
                108_384,
                10_200_000,
                8.66e-4,
                "structural problem",
                FemBlocks,
            ),
            Workload::Cfd2 => ("cfd2", 123_440, 3_090_000, 2.03e-4, "CFD", Mixed),
            Workload::MlLaplace => (
                "ML_Laplace",
                377_002,
                27_700_000,
                1.95e-4,
                "structural problem",
                FemBlocks,
            ),
            Workload::Af0K101 => (
                "af_0_k101",
                503_625,
                17_600_000,
                6.92e-5,
                "structural problem",
                FemBlocks,
            ),
            Workload::PFlow742 => (
                "PFlow_742",
                742_793,
                37_100_000,
                6.73e-5,
                "2D/3D problem",
                Mixed,
            ),
            Workload::C73 => (
                "c-73",
                169_422,
                1_280_000,
                4.46e-5,
                "optimization problem",
                AntiDiagStencil,
            ),
            Workload::AfShell10 => (
                "af_shell10",
                1_508_065,
                52_700_000,
                2.32e-5,
                "structural problem",
                FemBlocks,
            ),
            Workload::TmtSym => (
                "tmt_sym",
                726_713,
                5_080_000,
                9.62e-6,
                "electromagnetics problem",
                Stencil,
            ),
            Workload::TmtUnsym => (
                "tmt_unsym",
                917_825,
                4_580_000,
                5.44e-6,
                "electromagnetics problem",
                Stencil,
            ),
            Workload::T2em => (
                "t2em",
                921_632,
                4_590_000,
                5.40e-6,
                "electromagnetics problem",
                Stencil,
            ),
            Workload::StormG21000 => (
                "stormG2_1000",
                852_847,
                3_460_000,
                4.76e-6,
                "optimization problem",
                Staircase,
            ),
        };
        // Seeds are arbitrary but fixed, one per workload.
        let seed = 0x5A53_4D00 + self as u64;
        WorkloadSpec {
            name,
            n,
            nnz,
            density,
            domain,
            class,
            seed,
        }
    }

    /// Looks a workload up by its SuiteSparse name.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.spec().name == name)
    }

    /// Generates the synthetic matrix at the given scale.
    pub fn generate(self, scale: Scale) -> Coo {
        let spec = self.spec();
        let div = scale.edge_divisor();
        let n = (spec.n / div).max(64);
        // Preserve the paper's mean row degree at the scaled edge length.
        let nnz = ((spec.nnz as f64 * n as f64 / spec.n as f64) as usize).max(64);
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        // Workloads with a Table II pattern row plant it directly; the
        // structural classes below induce their histograms organically.
        if let Some(shares) = self.table_ii_shares() {
            let sub_n = (n / 4).max(1);
            // Keep the band wide enough that placements rarely collide
            // (collisions merge masks and dilute the planted shares) —
            // at least 8 free slots per placed submatrix.
            let est_blocks = (nnz / 6).max(1) as u32;
            let band = (sub_n / 8).max(2).max(est_blocks * 4 / sub_n);
            return planted_patterns(&mut rng, n, nnz, shares, band);
        }
        match spec.class {
            StructureClass::RandomGraph => random_uniform(&mut rng, n, nnz),
            StructureClass::AlignedFemBlocks => {
                fem_blocks(&mut rng, n, nnz, 4, (n / 16).max(8), true)
            }
            StructureClass::FemBlocks => fem_blocks(&mut rng, n, nnz, 4, (n / 8).max(8), false),
            StructureClass::Stencil => {
                // Enough diagonals to hit the target density; offsets avoid
                // multiples of 4 so local patterns are genuine diagonal
                // segments across submatrix boundaries.
                let d = (nnz / n as usize).max(3) | 1;
                let mut offsets: Vec<i64> = vec![0];
                let mut k = 1i64;
                while offsets.len() < d {
                    offsets.push(k * 5 + 1);
                    offsets.push(-(k * 5 + 1));
                    k += 1;
                }
                offsets.truncate(d);
                stencil(&mut rng, n, &offsets)
            }
            StructureClass::AntiDiagStencil => {
                let lines = (nnz / n as usize).max(4);
                anti_diag_stencil(&mut rng, n, lines, nnz / 10)
            }
            StructureClass::Staircase => staircase(&mut rng, n, nnz, (n / 64).max(16), 2),
            StructureClass::Mixed => {
                let mix = match self {
                    Workload::Mip1 => FragmentMix::BALANCED,
                    Workload::Cfd2 | Workload::PFlow742 => FragmentMix::SCATTERED,
                    _ => FragmentMix::BLOCK_HEAVY,
                };
                mixed_fragments(&mut rng, n, nnz, (n / 8).max(8), mix)
            }
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_workloads() {
        assert_eq!(Workload::ALL.len(), 20);
        let mut names: Vec<_> = Workload::ALL.iter().map(|w| w.spec().name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "names must be unique");
    }

    #[test]
    fn specs_match_paper_statistics() {
        for w in Workload::ALL {
            let s = w.spec();
            // density ~= nnz / n² within generator rounding
            let implied = s.nnz as f64 / (s.n as f64 * s.n as f64);
            let ratio = implied / s.density;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: implied density {implied:.2e} vs paper {:.2e}",
                s.name,
                s.density
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::Cfd2.generate(Scale::Small);
        let b = Workload::Cfd2.generate(Scale::Small);
        assert_eq!(a, b);
    }

    #[test]
    fn small_scale_preserves_row_degree_roughly() {
        for w in [
            Workload::Raefsky3,
            Workload::TmtSym,
            Workload::Mycielskian14,
        ] {
            let s = w.spec();
            let m = w.generate(Scale::Small);
            let paper_degree = s.nnz as f64 / s.n as f64;
            let degree = m.nnz() as f64 / m.rows() as f64;
            let ratio = degree / paper_degree;
            assert!(
                (0.5..2.5).contains(&ratio),
                "{}: generated row degree {degree:.1} vs paper {paper_degree:.1}",
                s.name,
            );
        }
    }

    #[test]
    fn from_name_round_trips() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.spec().name), Some(w));
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn raefsky3_is_fully_block_structured() {
        let m = Workload::Raefsky3.generate(Scale::Small);
        assert_eq!(m.nnz() % 16, 0, "aligned 4x4 blocks only");
    }
}
