//! Iterative solver: conjugate gradients on a block-structured SPD system,
//! with every SpMV running on the simulated SPASM accelerator.
//!
//! This is the paper's amortisation argument (Section V-E4) made concrete:
//! preprocessing is paid once, then thousands of SpMV iterations reuse the
//! encoded matrix — the scenario where SPASM's customisation cost
//! disappears against Serpens-style general accelerators.
//!
//! ```text
//! cargo run --release -p spasm --example iterative_solver
//! ```

use spasm::Pipeline;
use spasm_sparse::Coo;

/// Builds a block-tridiagonal SPD matrix (4x4 blocks, diagonally
/// dominant).
fn spd_block_tridiagonal(nb: u32) -> Coo {
    let n = nb * 4;
    let mut t = Vec::new();
    for b in 0..nb {
        for r in 0..4u32 {
            for c in 0..4u32 {
                // Diagonal block: strongly diagonally dominant.
                let v = if r == c { 8.0 } else { -0.5 };
                t.push((b * 4 + r, b * 4 + c, v));
            }
            if b + 1 < nb {
                // Symmetric off-diagonal coupling (diagonal of the block).
                t.push((b * 4 + r, (b + 1) * 4 + r, -1.0));
                t.push(((b + 1) * 4 + r, b * 4 + r, -1.0));
            }
        }
    }
    Coo::from_triplets(n, n, t).expect("entries in bounds")
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| *x as f64 * *y as f64).sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = spd_block_tridiagonal(512);
    let n = a.rows() as usize;
    println!(
        "SPD system: {}x{}, {} non-zeros",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    let prep_start = std::time::Instant::now();
    let mut prepared = Pipeline::new().prepare(&a)?;
    let prep_wall = prep_start.elapsed();
    println!(
        "preprocessing: {:?} host time; selected {} @ tile {}",
        prep_wall, prepared.best.config.name, prepared.best.tile_size
    );

    // Solve A x = b with CG; every A*p product runs on the simulator.
    let b: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) * 0.125 + 1.0).collect();
    let mut x = vec![0.0f32; n];
    let mut r = b.clone(); // r = b - A*0
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    // The pipeline built an execution plan at prepare time; every CG
    // iteration reuses it through `execute_into`, which returns the cached
    // report by reference — no per-SpMV decode, scheduling or allocation,
    // and no per-call report clone either.
    let mut simulated_seconds = 0.0f64;
    let mut iterations = 0usize;
    let mut ap = vec![0.0f32; n];
    for iter in 0..500 {
        ap.fill(0.0);
        let exec = prepared.execute_into(&p, &mut ap)?;
        simulated_seconds += exec.seconds;

        let alpha = rs_old / dot(&p, &ap);
        for i in 0..n {
            x[i] += (alpha * p[i] as f64) as f32;
            r[i] -= (alpha * ap[i] as f64) as f32;
        }
        let rs_new = dot(&r, &r);
        iterations = iter + 1;
        if rs_new.sqrt() < 1e-5 * (n as f64).sqrt() {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + (beta * p[i] as f64) as f32;
        }
        rs_old = rs_new;
    }
    println!("CG converged in {iterations} iterations");

    // Verify the solution residual with an independent host-side SpMV —
    // the row-partitioned parallel CSR kernel (bit-identical to the serial
    // one; serial fallback without the `parallel` feature).
    let mut ax = vec![0.0f32; n];
    spasm_sparse::Csr::from(&a).spmv_parallel(&x, &mut ax)?;
    let resid = (ax
        .iter()
        .zip(&b)
        .map(|(u, v)| ((u - v) as f64).powi(2))
        .sum::<f64>())
    .sqrt();
    println!("final residual |Ax - b| = {resid:.3e}");

    println!(
        "simulated accelerator time over {iterations} SpMVs: {:.3} ms \
         ({:.1} us/iteration) — preprocessing amortises across iterations",
        simulated_seconds * 1e3,
        simulated_seconds * 1e6 / iterations as f64
    );
    Ok(())
}
