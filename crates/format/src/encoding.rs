//! The 32-bit position-encoding word.

use std::fmt;

/// Edge length of a local pattern: SPASM fixes 4×4 submatrices in the
/// shipped format (Section V-B).
pub const PATTERN_EDGE: u32 = 4;

/// Maximum tile edge length: the 13-bit submatrix index fields address
/// `2¹³` submatrices of 4 rows/columns each.
pub const MAX_TILE_SIZE: u32 = (1 << 13) * PATTERN_EDGE;

/// One 32-bit position-encoding word, shared by a set of four values.
///
/// # Examples
///
/// ```
/// use spasm_format::PositionEncoding;
///
/// let pe = PositionEncoding::new(5, 3, true, false, 7);
/// assert_eq!(pe.c_idx(), 5);
/// assert_eq!(pe.r_idx(), 3);
/// assert!(pe.ce() && !pe.re());
/// assert_eq!(pe.t_idx(), 7);
/// assert_eq!(PositionEncoding::from_bits(pe.bits()), pe);
/// ```
///
/// Bit layout (LSB first):
///
/// | bits    | field   | meaning |
/// |---------|---------|---------|
/// | 0–12    | `c_idx` | column index of the 4×4 submatrix within the tile |
/// | 13–25   | `r_idx` | row index of the 4×4 submatrix within the tile |
/// | 26      | `CE`    | last instance of the current tile (switch the double-buffered x vector) |
/// | 27      | `RE`    | last instance of the current tile *row* (flush the partial-sum buffer) |
/// | 28–31   | `t_idx` | template identifier, index into the portfolio LUT |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PositionEncoding(u32);

impl PositionEncoding {
    const IDX_BITS: u32 = 13;
    const IDX_MASK: u32 = (1 << Self::IDX_BITS) - 1;
    const CE_BIT: u32 = 26;
    const RE_BIT: u32 = 27;
    const TID_SHIFT: u32 = 28;

    /// Packs the five fields into a word.
    ///
    /// # Panics
    ///
    /// Panics if `c_idx` or `r_idx` exceeds 13 bits or `t_idx` exceeds 4
    /// bits.
    pub fn new(c_idx: u32, r_idx: u32, ce: bool, re: bool, t_idx: u8) -> Self {
        assert!(c_idx <= Self::IDX_MASK, "c_idx {c_idx} exceeds 13 bits");
        assert!(r_idx <= Self::IDX_MASK, "r_idx {r_idx} exceeds 13 bits");
        assert!(t_idx < 16, "t_idx {t_idx} exceeds 4 bits");
        PositionEncoding(
            c_idx
                | (r_idx << Self::IDX_BITS)
                | ((ce as u32) << Self::CE_BIT)
                | ((re as u32) << Self::RE_BIT)
                | ((t_idx as u32) << Self::TID_SHIFT),
        )
    }

    /// Reinterprets a raw word (no validation needed: every bit pattern is
    /// a valid encoding).
    pub fn from_bits(bits: u32) -> Self {
        PositionEncoding(bits)
    }

    /// The raw 32-bit word.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Column index of the 4×4 submatrix within the tile.
    pub fn c_idx(self) -> u32 {
        self.0 & Self::IDX_MASK
    }

    /// Row index of the 4×4 submatrix within the tile.
    pub fn r_idx(self) -> u32 {
        (self.0 >> Self::IDX_BITS) & Self::IDX_MASK
    }

    /// Column-end flag: set on the last instance of a tile, telling the PE
    /// to switch to the prefetched x-vector segment.
    pub fn ce(self) -> bool {
        self.0 & (1 << Self::CE_BIT) != 0
    }

    /// Row-end flag: set on the last instance of the last tile of a tile
    /// row, telling the PE to flush its partial-sum buffer.
    pub fn re(self) -> bool {
        self.0 & (1 << Self::RE_BIT) != 0
    }

    /// Template identifier (index into the portfolio's opcode LUT).
    pub fn t_idx(self) -> u8 {
        (self.0 >> Self::TID_SHIFT) as u8
    }
}

impl fmt::Display for PositionEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pe(c={}, r={}, ce={}, re={}, t={})",
            self.c_idx(),
            self.r_idx(),
            self.ce() as u8,
            self.re() as u8,
            self.t_idx()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_fields() {
        let pe = PositionEncoding::new(0x1ABC, 0x0D5, true, false, 9);
        assert_eq!(pe.c_idx(), 0x1ABC);
        assert_eq!(pe.r_idx(), 0x0D5);
        assert!(pe.ce());
        assert!(!pe.re());
        assert_eq!(pe.t_idx(), 9);
        assert_eq!(PositionEncoding::from_bits(pe.bits()), pe);
    }

    #[test]
    fn extremes() {
        let pe = PositionEncoding::new(8191, 8191, true, true, 15);
        assert_eq!(pe.c_idx(), 8191);
        assert_eq!(pe.r_idx(), 8191);
        assert_eq!(pe.t_idx(), 15);
        let zero = PositionEncoding::new(0, 0, false, false, 0);
        assert_eq!(zero.bits(), 0);
    }

    #[test]
    #[should_panic(expected = "13 bits")]
    fn c_idx_overflow() {
        PositionEncoding::new(8192, 0, false, false, 0);
    }

    #[test]
    #[should_panic(expected = "4 bits")]
    fn t_idx_overflow() {
        PositionEncoding::new(0, 0, false, false, 16);
    }

    #[test]
    fn max_tile_size_matches_paper() {
        assert_eq!(MAX_TILE_SIZE, 32_768);
    }

    #[test]
    #[should_panic(expected = "13 bits")]
    fn r_idx_overflow() {
        PositionEncoding::new(0, 8192, false, false, 0);
    }

    #[test]
    fn fields_occupy_disjoint_bit_ranges() {
        // Each field at its maximum, alone, must produce exactly its own
        // bits — any overlap would corrupt a neighbouring field.
        assert_eq!(
            PositionEncoding::new(8191, 0, false, false, 0).bits(),
            0x0000_1FFF
        );
        assert_eq!(
            PositionEncoding::new(0, 8191, false, false, 0).bits(),
            0x03FF_E000
        );
        assert_eq!(PositionEncoding::new(0, 0, true, false, 0).bits(), 1 << 26);
        assert_eq!(PositionEncoding::new(0, 0, false, true, 0).bits(), 1 << 27);
        assert_eq!(
            PositionEncoding::new(0, 0, false, false, 15).bits(),
            0xF000_0000
        );
    }

    #[test]
    fn round_trip_boundary_grid() {
        // Cross product of per-field boundary values: every combination
        // must survive a pack → unpack → repack cycle unchanged.
        for &c in &[0u32, 1, 8190, 8191] {
            for &r in &[0u32, 1, 8190, 8191] {
                for ce in [false, true] {
                    for re in [false, true] {
                        for &t in &[0u8, 1, 14, 15] {
                            let pe = PositionEncoding::new(c, r, ce, re, t);
                            assert_eq!(
                                (pe.c_idx(), pe.r_idx(), pe.ce(), pe.re(), pe.t_idx()),
                                (c, r, ce, re, t)
                            );
                            assert_eq!(PositionEncoding::from_bits(pe.bits()), pe);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn from_bits_is_total_and_lossless() {
        // Every 32-bit word is a valid encoding; re-packing the decoded
        // fields reproduces the word bit for bit.
        for word in (0..=u32::MAX).step_by(16_777_259) {
            let pe = PositionEncoding::from_bits(word);
            let repacked =
                PositionEncoding::new(pe.c_idx(), pe.r_idx(), pe.ce(), pe.re(), pe.t_idx());
            assert_eq!(repacked.bits(), word);
        }
    }
}
