use std::fmt;

/// A local-pattern occupancy bitmask.
///
/// Bit `r·p + c` is set when cell `(r, c)` of the `p × p` submatrix holds a
/// stored entry. With `p ≤ 4` every mask fits a `u16` (the paper's "16-bit
/// long bitmask").
pub type Mask = u16;

/// Edge length of the local-pattern grid.
///
/// The paper evaluates 2×2, 3×3 and 4×4 local patterns (Fig. 9) and settles
/// on 4×4 "to maximize parallelism"; sizes beyond 4×4 are ruled out by the
/// pattern-count explosion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GridSize {
    /// 2×2 local patterns (4 cells, 2-element templates).
    S2,
    /// 3×3 local patterns (9 cells, 3-element templates).
    S3,
    /// 4×4 local patterns (16 cells, 4-element templates). The paper's
    /// chosen configuration.
    S4,
}

impl GridSize {
    /// Edge length `p`.
    pub const fn edge(self) -> u32 {
        match self {
            GridSize::S2 => 2,
            GridSize::S3 => 3,
            GridSize::S4 => 4,
        }
    }

    /// Number of cells `p²` (also the number of bitmask bits in use).
    pub const fn cells(self) -> u32 {
        self.edge() * self.edge()
    }

    /// Number of distinct non-empty local patterns, `2^(p²) − 1`
    /// (65 535 for 4×4, as in Section II-B).
    pub const fn pattern_count(self) -> u32 {
        (1u32 << self.cells()) - 1
    }

    /// Elements per template pattern. Templates have exactly `p` cells so a
    /// `p`-wide vector unit consumes one template instance per issue.
    pub const fn template_len(self) -> u32 {
        self.edge()
    }

    /// Mask with every in-grid bit set.
    pub const fn full_mask(self) -> Mask {
        ((1u32 << self.cells()) - 1) as Mask
    }

    /// Bit index of cell `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `r` or `c` is outside the grid.
    pub fn bit(self, r: u32, c: u32) -> u32 {
        debug_assert!(
            r < self.edge() && c < self.edge(),
            "cell ({r},{c}) outside grid"
        );
        r * self.edge() + c
    }

    /// Builds a mask from an iterator of `(row, col)` cells.
    pub fn mask_of(self, cells: impl IntoIterator<Item = (u32, u32)>) -> Mask {
        let mut m: Mask = 0;
        for (r, c) in cells {
            m |= 1 << self.bit(r, c);
        }
        m
    }

    /// Iterates the `(row, col)` cells set in `mask`, row-major.
    pub fn cells_of(self, mask: Mask) -> impl Iterator<Item = (u32, u32)> {
        let p = self.edge();
        (0..self.cells())
            .filter(move |b| mask & (1 << b) != 0)
            .map(move |b| (b / p, b % p))
    }

    /// All grid sizes the paper evaluates, in Fig. 9 order.
    pub const ALL: [GridSize; 3] = [GridSize::S2, GridSize::S3, GridSize::S4];
}

impl fmt::Display for GridSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.edge();
        write!(f, "{p}x{p}")
    }
}

/// Renders a mask as ASCII art (`#` = non-zero, `.` = empty), matching the
/// dark/light grids of the paper's figures.
pub fn render_mask(size: GridSize, mask: Mask) -> String {
    let p = size.edge();
    let mut out = String::with_capacity(((p + 1) * p) as usize);
    for r in 0..p {
        for c in 0..p {
            out.push(if mask & (1 << size.bit(r, c)) != 0 {
                '#'
            } else {
                '.'
            });
        }
        if r + 1 < p {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(GridSize::S2.cells(), 4);
        assert_eq!(GridSize::S3.cells(), 9);
        assert_eq!(GridSize::S4.cells(), 16);
        assert_eq!(GridSize::S4.pattern_count(), 65535);
        assert_eq!(GridSize::S4.full_mask(), 0xFFFF);
        assert_eq!(GridSize::S3.full_mask(), 0x1FF);
    }

    #[test]
    fn bit_layout_is_row_major() {
        assert_eq!(GridSize::S4.bit(0, 0), 0);
        assert_eq!(GridSize::S4.bit(0, 3), 3);
        assert_eq!(GridSize::S4.bit(1, 0), 4);
        assert_eq!(GridSize::S3.bit(2, 2), 8);
    }

    #[test]
    fn mask_round_trip() {
        let size = GridSize::S4;
        let cells = [(0, 1), (2, 3), (3, 0)];
        let m = size.mask_of(cells);
        let back: Vec<_> = size.cells_of(m).collect();
        assert_eq!(back, vec![(0, 1), (2, 3), (3, 0)]);
    }

    #[test]
    fn render() {
        let m = GridSize::S2.mask_of([(0, 0), (1, 1)]);
        assert_eq!(render_mask(GridSize::S2, m), "#.\n.#");
    }
}
