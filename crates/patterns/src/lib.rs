//! Local-pattern machinery of the SPASM framework (Sections II–IV of the
//! paper).
//!
//! A *local pattern* is the occupancy bitmask of a small `p × p` submatrix
//! (the paper focuses on `p = 4`, evaluating `p ∈ {2, 3, 4}` in Fig. 9).
//! A *template pattern* is a fixed-length (`p`-cell) shape — a row, column,
//! diagonal, anti-diagonal or 2×2 block — and a *portfolio* is the set of at
//! most 16 templates the hardware can decode (4-bit `t_idx`).
//!
//! This crate implements:
//!
//! * [`analysis`] — Algorithm 2: the local-pattern histogram of a matrix;
//! * [`templates`] — template constructors and the ten candidate portfolios
//!   of Table V;
//! * [`decompose`] — Listing 1 (`find_best_decomp`) plus an equivalent but
//!   much faster whole-table dynamic program;
//! * [`selection`] — Algorithm 3: portfolio selection over the top-n
//!   patterns, including the "dynamic template patterns" mode of Fig. 10.
//!
//! # Example
//!
//! ```
//! use spasm_patterns::{GridSize, TemplateSet, DecompositionTable};
//!
//! let portfolio = TemplateSet::table_v_set(0); // 4 RW + 4 CW + 4 BW + 4 diag
//! let table = DecompositionTable::build(&portfolio);
//! // A full 4x4 row 0 decomposes into exactly one row template: no padding.
//! let d = table.decompose(0b1111).expect("row is coverable");
//! assert_eq!(d.paddings, 0);
//! assert_eq!(d.template_ids.len(), 1);
//! assert_eq!(portfolio.size(), GridSize::S4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod decompose;
mod grid;
pub mod selection;
pub mod templates;

pub use analysis::PatternHistogram;
pub use decompose::{find_best_decomp, Decomposition, DecompositionTable};
pub use grid::{render_mask, GridSize, Mask};
pub use selection::{select_for_matrix_set, select_template_set, SelectionOutcome};
pub use templates::{Template, TemplateSet};
