//! Asserts the prepared-plan steady-state contract: once built (and the
//! pipeline warmed), `ExecutionPlan::run` performs **zero** heap
//! allocations per call — the scratch buffers, report and schedule are all
//! owned by the plan.
//!
//! A counting global allocator is armed only around the measured window,
//! so the (allocation-heavy) build phase does not pollute the count. The
//! window runs under a serial worker budget: spawning OS threads
//! inherently allocates, and the contract is about per-call *work*, not
//! about the fan-out machinery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_sparse::SpMv;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed while `f` runs.
fn count_allocs(f: impl FnOnce()) -> u64 {
    count_allocs_and_bytes(f).0
}

/// Counts heap allocations and the total bytes requested while `f` runs.
fn count_allocs_and_bytes(f: impl FnOnce()) -> (u64, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

#[test]
fn plan_run_is_allocation_free_at_steady_state() {
    let mut t = Vec::new();
    for i in 0..256u32 {
        t.push((i, i, 2.0));
        t.push((i, (i * 5 + 2) % 256, 0.5));
        if i + 1 < 256 {
            t.push((i + 1, i, -0.25));
        }
    }
    let a = spasm_sparse::Coo::from_triplets(256, 256, t).unwrap();
    let prepared =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial))
            .prepare(&a)
            .unwrap();
    let mut plan = prepared.accelerator().prepare(&prepared.encoded).unwrap();

    let x: Vec<f32> = (0..256).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
    let mut y = vec![0.0f32; 256];

    // Pin the plan to a serial budget for the measured window, and warm it
    // up (the very first run is already allocation-free, but the warm-up
    // keeps the test about steady state, not first-call behaviour).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        for _ in 0..3 {
            plan.run(&x, &mut y).unwrap();
        }
        let allocs = count_allocs(|| {
            for _ in 0..50 {
                plan.run(&x, &mut y).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "ExecutionPlan::run allocated {allocs} times over 50 steady-state calls"
        );
    });

    // The outputs stay correct after the counted window (sanity check that
    // the runs above actually did work).
    y.fill(0.0);
    plan.run(&x, &mut y).unwrap();
    let mut want = vec![0.0f32; 256];
    spasm_sparse::Csr::from(&a).spmv(&x, &mut want).unwrap();
    for (g, w) in y.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
    }
}

#[test]
fn run_batch_is_allocation_free_at_steady_state() {
    // The batched scratch (strided x, packed window-major y) grows on the
    // first call for a given batch size and is reused afterwards: once
    // warm, `run_batch` performs zero heap allocations per call.
    let mut t = Vec::new();
    for i in 0..192u32 {
        t.push((i, i, 1.5));
        t.push((i, (i * 7 + 3) % 192, 0.25));
    }
    let a = spasm_sparse::Coo::from_triplets(192, 192, t).unwrap();
    let prepared =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial))
            .prepare(&a)
            .unwrap();
    let mut plan = prepared.accelerator().prepare(&prepared.encoded).unwrap();

    let batch = 8usize;
    let xs: Vec<Vec<f32>> = (0..batch)
        .map(|j| {
            (0..192)
                .map(|i| (((i + 3 * j) % 9) as f32) * 0.5 - 2.0)
                .collect()
        })
        .collect();
    let mut ys = vec![vec![0.0f32; 192]; batch];

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        // First call grows xb/yb; from then on the batch path must be
        // allocation-free.
        for _ in 0..3 {
            plan.run_batch(&xs, &mut ys).unwrap();
        }
        let allocs = count_allocs(|| {
            for _ in 0..50 {
                plan.run_batch(&xs, &mut ys).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "ExecutionPlan::run_batch allocated {allocs} times over 50 steady-state calls"
        );

        // Smaller batches reuse the already-grown scratch: still zero.
        let xs_small = &xs[..3];
        let mut ys_small = vec![vec![0.0f32; 192]; 3];
        plan.run_batch(xs_small, &mut ys_small).unwrap();
        let allocs = count_allocs(|| {
            for _ in 0..20 {
                plan.run_batch(xs_small, &mut ys_small).unwrap();
            }
        });
        assert_eq!(allocs, 0, "shrunk-batch run_batch allocated {allocs} times");
    });
}

#[test]
fn values_only_delta_apply_is_allocation_bounded() {
    use spasm_sparse::{DeltaOp, MatrixDelta};

    // A values-only delta must be a copy-on-write patch of the 4-slot
    // value stream: its allocation cost is bounded by a few copies of
    // that stream, and is nowhere near a full re-prepare (which would
    // re-run analysis, decomposition and encoding).
    let mut t = Vec::new();
    for i in 0..256u32 {
        t.push((i, i, 2.0));
        t.push((i, (i * 5 + 2) % 256, 0.5));
        if i + 1 < 256 {
            t.push((i + 1, i, -0.25));
        }
    }
    let a = spasm_sparse::Coo::from_triplets(256, 256, t).unwrap();
    let opts = PipelineOptions::default().parallelism(Parallelism::Serial);
    let mut prepared = Pipeline::with_options(opts.clone()).prepare(&a).unwrap();

    // Warm the lazy golden CSR outside the window: validation consults it,
    // and its one-time build is not part of the per-delta cost.
    let _ = prepared.golden();

    let delta: MatrixDelta = (0..256u32)
        .step_by(3)
        .map(|i| DeltaOp::Patch {
            row: i,
            col: i,
            value: 2.5,
        })
        .collect();
    let value_bytes = (prepared.encoded.n_instances() * 4 * std::mem::size_of::<f32>()) as u64;

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        let (_, apply_bytes) = count_allocs_and_bytes(|| {
            prepared.apply_delta(&delta).unwrap();
        });
        assert!(
            apply_bytes <= 4 * value_bytes + 64 * 1024,
            "values-only apply moved {apply_bytes} bytes for a {value_bytes}-byte value \
             stream — the encoded stream was re-decoded"
        );

        // For scale: a from-scratch prepare of the same matrix.
        let (_, rebuild_bytes) =
            count_allocs_and_bytes(|| drop(Pipeline::with_options(opts.clone()).prepare(&a)));
        assert!(
            apply_bytes < rebuild_bytes / 4,
            "values-only apply ({apply_bytes} bytes) is not meaningfully cheaper than a \
             full re-prepare ({rebuild_bytes} bytes)"
        );
    });

    // And the patch really landed: the updated plan computes the mutated
    // product.
    let x: Vec<f32> = (0..256).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
    let mut got = vec![0.0f32; 256];
    prepared.execute_into(&x, &mut got).unwrap();
    let mut want = vec![0.0f32; 256];
    prepared.golden().spmv(&x, &mut want).unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
    }
}

#[test]
fn prepared_plans_share_the_value_stream_without_copying() {
    // The flattened value stream is `Arc<[f32]>`-shared between the
    // encoded matrix and every plan prepared from it: preparing another
    // plan must not copy the values.
    let mut t = Vec::new();
    for i in 0..128u32 {
        for c in 0..8u32 {
            t.push((i, (i + c * 17) % 128, 1.0 + (c as f32) * 0.25));
        }
    }
    let a = spasm_sparse::Coo::from_triplets(128, 128, t).unwrap();
    let prepared =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial))
            .prepare(&a)
            .unwrap();
    let m = &prepared.encoded;
    let acc = prepared.accelerator();

    // Same allocation, not equal copies. (`shared_values` is `Some` for
    // every prepared plan; only mapped wire-v3 plans borrow their values.)
    let plan = acc.prepare(m).unwrap();
    let plan_values = plan.shared_values().expect("prepared plans own values");
    assert!(
        std::sync::Arc::ptr_eq(plan_values, m.shared_values()),
        "plan must share the matrix's value-stream allocation"
    );

    // Each additional plan adds exactly one strong reference.
    let before = std::sync::Arc::strong_count(m.shared_values());
    let plan2 = acc.prepare(m).unwrap();
    assert_eq!(std::sync::Arc::strong_count(m.shared_values()), before + 1);
    drop(plan2);
    assert_eq!(std::sync::Arc::strong_count(m.shared_values()), before);

    // Preparing a plan allocates scratch and decoded streams, but never a
    // second copy of the 4-slot value stream: cloning the matrix (which
    // shares values by refcount) must cost far less than the value bytes.
    let value_bytes = (m.n_instances() * 4 * std::mem::size_of::<f32>()) as u64;
    let (_, clone_bytes) = count_allocs_and_bytes(|| {
        let cloned = m.clone();
        assert!(std::sync::Arc::ptr_eq(
            cloned.shared_values(),
            m.shared_values()
        ));
    });
    assert!(
        clone_bytes < value_bytes,
        "matrix clone moved {clone_bytes} bytes — value stream ({value_bytes} bytes) was copied"
    );
    drop(plan);
}
