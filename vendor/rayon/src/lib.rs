//! Vendored, dependency-free stand-in for the subset of the `rayon` API this
//! workspace uses. The build environment has no registry access, so the real
//! crate cannot be fetched; this shim keeps call sites rayon-idiomatic while
//! running on `std::thread::scope`.
//!
//! Semantics this shim guarantees (and the workspace's determinism tests
//! rely on):
//!
//! * **Order preservation.** Every combinator and terminal is
//!   index-stable: `collect` returns results in input order regardless of
//!   thread count or scheduling.
//! * **Static contiguous partitioning.** An input of length `n` is split
//!   into at most [`current_num_threads`] contiguous parts; each part runs
//!   sequentially on one worker. There is no work stealing, so a given
//!   `(input, thread count)` pair always produces the same partition.
//! * **No nested oversubscription.** Worker threads see a thread budget of
//!   1, so nested parallel calls degrade to sequential execution instead of
//!   spawning `n²` threads.
//!
//! Thread budgets come from [`ThreadPool::install`] (a thread-local
//! override, mirroring how the workspace uses real rayon pools) and default
//! to [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;

pub mod iter;
pub mod slice;

/// The glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// 0 = no override (use available parallelism).
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel terminals may use on this thread.
pub fn current_num_threads() -> usize {
    let budget = THREAD_BUDGET.with(Cell::get);
    if budget > 0 {
        budget
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Runs `f` with the thread budget set to `n` (restored afterwards).
/// `n == 0` restores the default budget. Used by [`ThreadPool::install`].
fn with_thread_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_BUDGET.with(|b| b.replace(n));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Builder for a [`ThreadPool`] (stub of `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Caps the pool at `num_threads` workers (0 = all available cores).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in this shim; the `Result` mirrors the
    /// upstream signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type mirroring the upstream builder signature; never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error (unreachable in the vendored shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A thread budget under which parallel terminals run (stub of
/// `rayon::ThreadPool`; threads are spawned per terminal, not kept alive).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread budget active.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_thread_budget(self.num_threads, f)
    }

    /// The budget this pool grants.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() < 2 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(|| with_thread_budget(1, b));
            let ra = with_thread_budget(1, a);
            (ra, hb.join().expect("rayon shim: join closure panicked"))
        })
    }
}

/// Splits `len` items into at most `parts` contiguous spans, returned as
/// `(start, end)` pairs covering `0..len` in order. Deterministic.
pub(crate) fn partition(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut spans = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        spans.push((start, start + size));
        start += size;
    }
    spans
}

/// Runs `run` over each split of `parts`, on worker threads when the budget
/// allows, and returns the results in input order.
pub(crate) fn drive<P, R>(parts: Vec<P>, run: impl Fn(P) -> R + Sync) -> Vec<R>
where
    P: Send,
    R: Send,
{
    if parts.len() <= 1 || current_num_threads() < 2 {
        return parts.into_iter().map(run).collect();
    }
    let run = &run;
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| s.spawn(move || with_thread_budget(1, || run(p))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim: worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for len in [0usize, 1, 2, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 7, 64] {
                let spans = partition(len, parts);
                let mut cursor = 0;
                for &(a, b) in &spans {
                    assert_eq!(a, cursor);
                    assert!(b > a);
                    cursor = b;
                }
                assert_eq!(cursor, len);
                assert!(spans.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        for budget in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(budget)
                .build()
                .unwrap();
            let out: Vec<u64> = pool.install(|| input.par_iter().map(|&v| v * v).collect());
            let want: Vec<u64> = input.iter().map(|&v| v * v).collect();
            assert_eq!(out, want);
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0u32; 1003];
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1002], 11);
    }

    #[test]
    fn into_par_iter_on_vec_and_range() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let out: Vec<String> = v.into_par_iter().map(|s| format!("{s}!")).collect();
        assert_eq!(out, ["a!", "b!", "c!"]);
        let sq: Vec<usize> = (0..6usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, [0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn nested_calls_do_not_oversubscribe() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let budgets: Vec<usize> = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        // Inside workers the budget is 1 (when the outer ran parallel) or
        // inherited (when it collapsed to sequential on a 1-core host).
        for b in budgets {
            assert!(b == 1 || b == 4);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn install_restores_budget() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), outside);
    }
}
