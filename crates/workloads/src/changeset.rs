//! Seeded streaming-changeset generator: timestamped [`MatrixDelta`]
//! sequences against an evolving matrix, for exercising the live-update
//! path (`spasm::Prepared::apply_delta`).
//!
//! The generator keeps a shadow copy of the matrix's nonzero set while it
//! emits deltas, so every operation is valid against the state the matrix
//! will actually be in when the delta arrives: patches and deletes always
//! target present entries, inserts always target absent cells, and no two
//! operations inside one delta touch the same cell. Values are quantised
//! to multiples of 0.25 so spliced and re-prepared plans stay bit-exact
//! under any accumulation order.
//!
//! Everything is deterministic in the seed: the same `(matrix, seed,
//! config)` triple always yields the same timestamped sequence.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spasm_sparse::{Coo, Index, MatrixDelta};

/// Shape of a generated changeset sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangesetConfig {
    /// Number of timestamped deltas to emit.
    pub deltas: usize,
    /// Operations per delta.
    pub ops_per_delta: usize,
    /// Relative weight of value patches.
    pub patch_weight: f64,
    /// Relative weight of inserts.
    pub insert_weight: f64,
    /// Relative weight of deletes.
    pub delete_weight: f64,
    /// Maximum tick gap between consecutive deltas (timestamps advance
    /// by `1..=tick_stride` each step).
    pub tick_stride: u64,
}

impl Default for ChangesetConfig {
    fn default() -> Self {
        ChangesetConfig {
            deltas: 8,
            ops_per_delta: 16,
            patch_weight: 2.0,
            insert_weight: 1.0,
            delete_weight: 1.0,
            tick_stride: 100,
        }
    }
}

impl ChangesetConfig {
    /// A values-only sequence (patches exclusively) — the copy-on-write
    /// fast path.
    pub fn values_only(mut self) -> Self {
        self.insert_weight = 0.0;
        self.delete_weight = 0.0;
        self.patch_weight = 1.0;
        self
    }

    /// A structural churn sequence (inserts and deletes only).
    pub fn structural_only(mut self) -> Self {
        self.patch_weight = 0.0;
        self.insert_weight = 1.0;
        self.delete_weight = 1.0;
        self
    }
}

/// The evolving nonzero set: O(1) membership, uniform sampling and
/// removal.
struct Shadow {
    present: Vec<(Index, Index)>,
    index: HashMap<(Index, Index), usize>,
}

impl Shadow {
    fn new(matrix: &Coo) -> Self {
        let mut present = Vec::with_capacity(matrix.nnz());
        let mut index = HashMap::with_capacity(matrix.nnz());
        for (r, c, v) in matrix.iter() {
            // Explicit zeros round-trip as absent through the encoded
            // stream; the delta layer never targets them.
            if v != 0.0 {
                index.insert((r, c), present.len());
                present.push((r, c));
            }
        }
        Shadow { present, index }
    }

    fn contains(&self, cell: (Index, Index)) -> bool {
        self.index.contains_key(&cell)
    }

    fn sample(&self, rng: &mut SmallRng) -> Option<(Index, Index)> {
        if self.present.is_empty() {
            return None;
        }
        Some(self.present[rng.gen_range(0..self.present.len())])
    }

    fn insert(&mut self, cell: (Index, Index)) {
        if !self.index.contains_key(&cell) {
            self.index.insert(cell, self.present.len());
            self.present.push(cell);
        }
    }

    fn remove(&mut self, cell: (Index, Index)) {
        if let Some(at) = self.index.remove(&cell) {
            self.present.swap_remove(at);
            if at < self.present.len() {
                self.index.insert(self.present[at], at);
            }
        }
    }
}

/// A quantised non-zero value: `±k·0.25`, `k ∈ 1..=32`. Exactly
/// representable, so every accumulation order reproduces identical bits.
fn quantized(rng: &mut SmallRng) -> f32 {
    let magnitude = rng.gen_range(1..=32) as f32 * 0.25;
    if rng.gen_bool(0.5) {
        -magnitude
    } else {
        magnitude
    }
}

/// Generates a timestamped delta sequence against `matrix`.
///
/// Each returned `(tick, delta)` is valid against the matrix state
/// produced by applying all earlier deltas in order (the first against
/// `matrix` itself); ticks are strictly increasing. Weights with zero
/// total fall back to patches only; kinds that are impossible in the
/// current state (deleting from an empty matrix, inserting into a full
/// one) renormalise onto the possible ones.
///
/// # Panics
///
/// Panics when `matrix` is entirely empty *and* full (impossible), or
/// when `config.ops_per_delta` is 0 with `config.deltas` non-zero ops
/// requested — both indicate a misconfigured caller.
pub fn changesets(matrix: &Coo, seed: u64, config: &ChangesetConfig) -> Vec<(u64, MatrixDelta)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CA5C_ADE5_0000);
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let cells_total = rows as u64 * cols as u64;
    let mut shadow = Shadow::new(matrix);
    let mut out = Vec::with_capacity(config.deltas);
    let mut tick = 0u64;

    for _ in 0..config.deltas {
        tick += rng.gen_range(1..=config.tick_stride.max(1));
        let mut delta = MatrixDelta::new();
        // Cells already claimed by this delta: validation rejects two
        // ops on one cell, and a second op would also race the first's
        // effect inside the same atomically-applied batch.
        let mut used: HashMap<(Index, Index), ()> = HashMap::new();

        for _ in 0..config.ops_per_delta {
            let occupied = shadow.present.len() as u64;
            let can_hit = shadow.present.iter().any(|cell| !used.contains_key(cell));
            let can_insert = occupied + (used.len() as u64) < cells_total;
            let (pw, iw, dw) = (
                if can_hit {
                    config.patch_weight.max(0.0)
                } else {
                    0.0
                },
                if can_insert {
                    config.insert_weight.max(0.0)
                } else {
                    0.0
                },
                if can_hit {
                    config.delete_weight.max(0.0)
                } else {
                    0.0
                },
            );
            let total = pw + iw + dw;
            if total <= 0.0 {
                break;
            }
            let pick = rng.gen_range(0.0..total);

            if pick < pw + dw {
                // Patch or delete an unclaimed present entry.
                let cell = loop {
                    let Some(cell) = shadow.sample(&mut rng) else {
                        break None;
                    };
                    if !used.contains_key(&cell) {
                        break Some(cell);
                    }
                };
                let Some((r, c)) = cell else { break };
                used.insert((r, c), ());
                if pick < pw {
                    delta = delta.patch(r, c, quantized(&mut rng));
                } else {
                    delta = delta.delete(r, c);
                    shadow.remove((r, c));
                }
            } else {
                // Insert into an unclaimed absent cell.
                let cell = loop {
                    let (r, c) = (rng.gen_range(0..rows), rng.gen_range(0..cols));
                    if !shadow.contains((r, c)) && !used.contains_key(&(r, c)) {
                        break (r, c);
                    }
                };
                used.insert(cell, ());
                delta = delta.insert(cell.0, cell.1, quantized(&mut rng));
                shadow.insert(cell);
            }
        }

        if !delta.is_empty() {
            out.push((tick, delta));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_sparse::{Csr, DeltaOp};
    use std::collections::BTreeMap;

    fn base() -> Coo {
        let mut rng = SmallRng::seed_from_u64(11);
        crate::random_uniform(&mut rng, 96, 600)
    }

    /// Applies a delta to a cell map (the reference semantics).
    fn apply(cells: &mut BTreeMap<(u32, u32), f32>, delta: &MatrixDelta) {
        for op in delta.ops() {
            match *op {
                DeltaOp::Patch { row, col, value } | DeltaOp::Insert { row, col, value } => {
                    cells.insert((row, col), value);
                }
                DeltaOp::Delete { row, col } => {
                    cells.remove(&(row, col));
                }
            }
        }
    }

    #[test]
    fn changesets_are_deterministic() {
        let m = base();
        let a = changesets(&m, 42, &ChangesetConfig::default());
        let b = changesets(&m, 42, &ChangesetConfig::default());
        assert_eq!(a, b);
        let c = changesets(&m, 43, &ChangesetConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn every_delta_validates_against_the_evolving_matrix() {
        let m = base();
        let seq = changesets(
            &m,
            7,
            &ChangesetConfig {
                deltas: 12,
                ops_per_delta: 24,
                ..ChangesetConfig::default()
            },
        );
        assert_eq!(seq.len(), 12);
        let mut cells: BTreeMap<(u32, u32), f32> = m.iter().map(|(r, c, v)| ((r, c), v)).collect();
        let mut last_tick = 0u64;
        for (tick, delta) in &seq {
            assert!(*tick > last_tick, "ticks strictly increase");
            last_tick = *tick;
            let triplets: Vec<(u32, u32, f32)> =
                cells.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
            let csr = Csr::from(&Coo::from_triplets(m.rows(), m.cols(), triplets).unwrap());
            delta.validate(&csr).expect("delta valid against its state");
            apply(&mut cells, delta);
        }
    }

    #[test]
    fn values_only_config_emits_patches_exclusively() {
        let m = base();
        let seq = changesets(&m, 3, &ChangesetConfig::default().values_only());
        assert!(!seq.is_empty());
        for (_, delta) in &seq {
            assert!(delta.is_values_only());
            assert!(!delta.is_empty());
        }
    }

    #[test]
    fn structural_config_emits_no_patches() {
        let m = base();
        let seq = changesets(&m, 5, &ChangesetConfig::default().structural_only());
        assert!(!seq.is_empty());
        for (_, delta) in &seq {
            assert!(delta
                .ops()
                .iter()
                .all(|op| !matches!(op, DeltaOp::Patch { .. })));
        }
    }

    #[test]
    fn values_are_quantized_and_nonzero() {
        let m = base();
        for (_, delta) in changesets(&m, 9, &ChangesetConfig::default()) {
            for op in delta.ops() {
                if let DeltaOp::Patch { value, .. } | DeltaOp::Insert { value, .. } = *op {
                    assert_ne!(value, 0.0);
                    assert_eq!(value, (value * 4.0).round() / 4.0, "multiple of 0.25");
                }
            }
        }
    }

    #[test]
    fn delete_heavy_sequence_survives_matrix_exhaustion() {
        // A tiny matrix drained by deletes: the generator renormalises
        // onto inserts instead of emitting invalid ops.
        let m = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let seq = changesets(
            &m,
            1,
            &ChangesetConfig {
                deltas: 6,
                ops_per_delta: 4,
                patch_weight: 0.0,
                insert_weight: 0.2,
                delete_weight: 5.0,
                tick_stride: 10,
            },
        );
        let mut cells: BTreeMap<(u32, u32), f32> = m.iter().map(|(r, c, v)| ((r, c), v)).collect();
        for (_, delta) in &seq {
            let triplets: Vec<(u32, u32, f32)> =
                cells.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
            let csr = Csr::from(&Coo::from_triplets(m.rows(), m.cols(), triplets).unwrap());
            delta.validate(&csr).expect("still valid");
            apply(&mut cells, delta);
        }
    }
}
