//! Reordering study (extension): does a bandwidth-reducing permutation
//! (reverse Cuthill–McKee) improve SPASM's local-pattern density?
//!
//! The paper's amortisation argument cites the reordering literature
//! (Trotter et al., SC'23) as the same cost model SPASM preprocessing
//! lives in. This harness scrambles each workload with a random symmetric
//! permutation (simulating an unfortunate native ordering), then compares
//! SPASM's padding rate, stream size and throughput for the scrambled vs
//! RCM-restored matrix.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin reorder_study [-- --scale paper]
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;
use spasm::Pipeline;
use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_sparse::reorder::{bandwidth, permute_symmetric, rcm, Permutation};
use spasm_sparse::Coo;
use spasm_workloads::Workload;

fn scramble(m: &Coo, seed: u64) -> Coo {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut fwd: Vec<u32> = (0..m.rows()).collect();
    fwd.shuffle(&mut rng);
    let p = Permutation::from_forward(fwd).expect("shuffle is a bijection");
    permute_symmetric(m, &p).expect("square workloads")
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Reordering study — RCM vs scrambled ordering ({})",
        scale_name(scale)
    );
    rule(108);
    println!(
        "{:<14} {:>11} {:>11} | {:>9} {:>9} | {:>9} {:>9} | {:>9}",
        "matrix", "bw scram.", "bw RCM", "pad scr.", "pad RCM", "GF/s scr.", "GF/s RCM", "stream"
    );
    rule(108);
    let pipeline = Pipeline::new();
    let mut gains = Vec::new();
    // Square, structure-dominated workloads where ordering matters.
    for w in [
        Workload::Raefsky3,
        Workload::TmtSym,
        Workload::Ex11,
        Workload::AfShell10,
        Workload::X104,
    ] {
        eprintln!("  [gen] {w} ...");
        let m = w.generate(scale);
        let scrambled = scramble(&m, 0xC0DE + w as u64);
        let p = rcm(&scrambled).expect("square");
        let restored = permute_symmetric(&scrambled, &p).expect("square");

        let run = |mat: &Coo| {
            let mut prepared = pipeline.prepare(mat).expect("pipeline");
            let x = vec![1.0f32; mat.cols() as usize];
            let mut y = vec![0.0f32; mat.rows() as usize];
            let exec = prepared.execute(&x, &mut y).expect("simulate");
            (
                prepared.encoded.padding_rate(),
                exec.gflops,
                prepared.encoded.storage_bytes(),
            )
        };
        let (pad_s, gf_s, _) = run(&scrambled);
        let (pad_r, gf_r, bytes_r) = run(&restored);
        gains.push(gf_r / gf_s);
        println!(
            "{:<14} {:>11} {:>11} | {:>8.1}% {:>8.1}% | {:>9.2} {:>9.2} | {:>7.2}B/nnz",
            w.to_string(),
            bandwidth(&scrambled),
            bandwidth(&restored),
            100.0 * pad_s,
            100.0 * pad_r,
            gf_s,
            gf_r,
            bytes_r as f64 / m.nnz() as f64,
        );
    }
    rule(108);
    println!(
        "geomean SPASM throughput gain from RCM restoration: {:.2}x",
        geomean(gains.iter().copied())
    );
    println!(
        "(scrambling destroys local patterns — everything becomes scattered singles; \
         RCM recovers banded structure and with it the template portfolio's value)"
    );
}
