//! Synthetic workload suite for the SPASM reproduction.
//!
//! The paper evaluates on 20 SuiteSparse matrices (Table II). Those files
//! are not redistributable inside this repository, so this crate generates
//! *structural stand-ins*: seeded synthetic matrices that match each
//! original's dimensions, non-zero count, density and — most importantly
//! for SPASM — its dominant class of local patterns and global composition
//! (FEM block structure, banded stencils, anti-diagonal stencils, random
//! graphs, staircase LPs, …).
//!
//! Every generator is deterministic given the workload's fixed seed, and
//! supports three [`Scale`]s so tests, benches and the full paper-sized
//! runs can share one code path.
//!
//! # Example
//!
//! ```
//! use spasm_workloads::{Scale, Workload};
//!
//! let m = Workload::Raefsky3.generate(Scale::Small);
//! // raefsky3 is the fully 4x4-block-structured CFD matrix.
//! assert!(m.nnz() > 0);
//! assert_eq!(m.rows(), m.cols());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod changeset;
mod gen;
mod suite;

pub use changeset::{changesets, ChangesetConfig};
pub use gen::{
    anti_diag_stencil, fem_blocks, mixed_fragments, nm_pruned, random_uniform, staircase, stencil,
    FragmentMix,
};
pub use suite::{Scale, Workload, WorkloadSpec};
