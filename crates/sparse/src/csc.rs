use crate::{Coo, Index, SparseError, Value};

/// Compressed Sparse Column (CSC) matrix.
///
/// The column-major dual of [`crate::Csr`]: a column-pointer array of length
/// `cols + 1` plus row-index and value arrays of length `nnz`. Storage cost
/// is symmetric to CSR.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    rows: Index,
    cols: Index,
    col_ptr: Vec<usize>,
    row_idx: Vec<Index>,
    values: Vec<Value>,
}

impl Csc {
    /// Builds a CSC matrix directly from its raw arrays.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::Csr::from_raw`]: pointer array must be consistent and
    /// row indices within each column strictly increasing and in bounds.
    pub fn from_raw(
        rows: Index,
        cols: Index,
        col_ptr: Vec<usize>,
        row_idx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, SparseError> {
        let bad = |message: &str| SparseError::ParseError {
            line: 0,
            message: message.into(),
        };
        if col_ptr.len() != cols as usize + 1 {
            return Err(bad("col_ptr length must be cols + 1"));
        }
        if row_idx.len() != values.len() {
            return Err(bad("row_idx and values must have equal length"));
        }
        if col_ptr.first() != Some(&0) || col_ptr.last() != Some(&row_idx.len()) {
            return Err(bad("col_ptr must start at 0 and end at nnz"));
        }
        for w in col_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(bad("col_ptr must be non-decreasing"));
            }
            for pair in row_idx[w[0]..w[1]].windows(2) {
                if pair[0] >= pair[1] {
                    return Err(bad("row indices within a column must strictly increase"));
                }
            }
        }
        if let Some(&r) = row_idx.iter().max() {
            if r >= rows {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: 0,
                    rows,
                    cols,
                });
            }
        }
        Ok(Csc {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, concatenated column by column.
    pub fn row_indices(&self) -> &[Index] {
        &self.row_idx
    }

    /// Stored values, parallel to [`Csc::row_indices`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The `(row, value)` pairs of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: Index) -> impl Iterator<Item = (Index, Value)> + '_ {
        let span = self.col_ptr[c as usize]..self.col_ptr[c as usize + 1];
        self.row_idx[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&r, &v)| (r, v))
    }
}

impl From<&Coo> for Csc {
    fn from(coo: &Coo) -> Self {
        let cols = coo.cols();
        let mut col_ptr = vec![0usize; cols as usize + 1];
        for &c in coo.col_indices() {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..cols as usize {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0 as Index; coo.nnz()];
        let mut values = vec![0.0 as Value; coo.nnz()];
        // COO iterates in (row, col) order, so rows arrive increasing within
        // each column — the strictly-increasing invariant holds.
        for (r, c, v) in coo.iter() {
            let slot = cursor[c as usize];
            row_idx[slot] = r;
            values[slot] = v;
            cursor[c as usize] += 1;
        }
        Csc {
            rows: coo.rows(),
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

impl From<&Csc> for Coo {
    fn from(csc: &Csc) -> Self {
        let mut triplets = Vec::with_capacity(csc.nnz());
        for c in 0..csc.cols() {
            for (r, v) in csc.col(c) {
                triplets.push((r, c, v));
            }
        }
        Coo::from_triplets(csc.rows(), csc.cols(), triplets)
            .expect("CSC entries are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        Coo::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_round_trip() {
        let coo = sample();
        let csc = Csc::from(&coo);
        assert_eq!(csc.nnz(), 5);
        assert_eq!(csc.col_ptr(), &[0, 2, 3, 4, 5]);
        assert_eq!(Coo::from(&csc), coo);
    }

    #[test]
    fn col_iteration() {
        let csc = Csc::from(&sample());
        let col0: Vec<_> = csc.col(0).collect();
        assert_eq!(col0, vec![(0, 1.0), (2, 4.0)]);
        assert_eq!(csc.col(3).collect::<Vec<_>>(), vec![(0, 2.0)]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(Csc::from_raw(2, 2, vec![0, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 9], vec![1.0, 2.0]).is_err());
    }
}
