//! Execution tracing: a cycle-annotated event timeline of one simulated
//! SpMV, for understanding *why* a schedule wins (which groups idle,
//! whether tiles are compute- or x-load-bound, when the y drain bites).
//!
//! The trace prices work with exactly the same terms as
//! [`crate::timing`], so its total equals [`crate::perf::estimate_cycles`]
//! and [`crate::Accelerator::run`] — asserted by tests.

use std::fmt;

use spasm_format::TilingSummary;

use crate::config::HwConfig;
use crate::perf::jobs_from_summary;
use crate::timing::{self, TileJob, INIT_CYCLES, TILE_SWITCH_CYCLES};

/// What a PE group was doing during an event's cycle span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opcode LUT load and control set-up (all groups).
    Init,
    /// Processing one tile, bounded by its critical lane's compute.
    ComputeBound {
        /// Tile row.
        tile_row: u32,
        /// Tile column.
        tile_col: u32,
        /// Instances in the tile.
        instances: usize,
    },
    /// Processing one tile, bounded by the x-segment prefetch.
    XLoadBound {
        /// Tile row.
        tile_row: u32,
        /// Tile column.
        tile_col: u32,
        /// Bytes of x loaded.
        bytes: u64,
    },
    /// Pipeline drain while switching tiles.
    TileSwitch,
    /// Waiting for the shared y channel to drain final sums (appears on
    /// the virtual "y" lane of the trace).
    YDrain {
        /// Total y traffic in bytes.
        bytes: u64,
    },
}

/// One event on a group's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// PE group index, or `None` for accelerator-wide events (init, y).
    pub group: Option<u32>,
    /// Cycle the event starts (inclusive).
    pub start: u64,
    /// Cycle the event ends (exclusive).
    pub end: u64,
    /// What was happening.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Event duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// The full timeline of one execution.
///
/// # Examples
///
/// ```
/// use spasm_format::{SubmatrixMap, TilingSummary};
/// use spasm_hw::{ExecutionTrace, HwConfig};
/// use spasm_patterns::{DecompositionTable, TemplateSet};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let coo = Coo::from_triplets(16, 16, (0..16).map(|i| (i, i, 1.0)).collect())?;
/// let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
/// let summary = TilingSummary::analyze(&SubmatrixMap::from_coo(&coo), &table, 8)?;
/// let trace = ExecutionTrace::capture(&summary, &HwConfig::spasm_4_1());
/// assert!(trace.total_cycles() > 0);
/// assert!(trace.balance() <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    per_group_busy: Vec<u64>,
    total_cycles: u64,
    num_groups: u32,
}

impl ExecutionTrace {
    /// Traces the execution of a tiling on a configuration.
    pub fn capture(summary: &TilingSummary, cfg: &HwConfig) -> Self {
        let jobs = jobs_from_summary(summary);
        let y_bytes = timing::y_bytes(summary.worked_row_heights());
        let tile_size = summary.tile_size();
        let assignment = timing::lpt_assign(jobs, cfg.num_pe_groups, tile_size, cfg);

        let mut events = vec![TraceEvent {
            group: None,
            start: 0,
            end: INIT_CYCLES,
            kind: EventKind::Init,
        }];
        let issue = cfg.issue_rate();
        let x_bpc = cfg.num_xvec_ch as f64 * cfg.channel_bytes_per_cycle();
        let x_load = (tile_size as f64 * 4.0 / x_bpc).ceil() as u64;
        let x_bytes = u64::from(tile_size) * 4;

        let mut per_group_busy = Vec::with_capacity(assignment.len());
        for (g, assigned) in assignment.iter().enumerate() {
            let mut cursor = INIT_CYCLES;
            if let Some(first) = assigned.first() {
                // The first tile's x segment is exposed: the double buffer
                // starts empty.
                events.push(TraceEvent {
                    group: Some(g as u32),
                    start: cursor,
                    end: cursor + x_load,
                    kind: EventKind::XLoadBound {
                        tile_row: first.tile_row,
                        tile_col: first.tile_col,
                        bytes: x_bytes,
                    },
                });
                cursor += x_load;
            }
            for job in assigned {
                let compute = (job.max_lane_instances as f64 / issue).ceil() as u64;
                let span = compute.max(x_load);
                let kind = if compute >= x_load {
                    EventKind::ComputeBound {
                        tile_row: job.tile_row,
                        tile_col: job.tile_col,
                        instances: job.n_instances,
                    }
                } else {
                    EventKind::XLoadBound {
                        tile_row: job.tile_row,
                        tile_col: job.tile_col,
                        bytes: x_bytes,
                    }
                };
                events.push(TraceEvent {
                    group: Some(g as u32),
                    start: cursor,
                    end: cursor + span,
                    kind,
                });
                cursor += span;
                events.push(TraceEvent {
                    group: Some(g as u32),
                    start: cursor,
                    end: cursor + TILE_SWITCH_CYCLES,
                    kind: EventKind::TileSwitch,
                });
                cursor += TILE_SWITCH_CYCLES;
            }
            per_group_busy.push(cursor - INIT_CYCLES);
        }

        let y_drain = (y_bytes as f64 / cfg.channel_bytes_per_cycle()).ceil() as u64;
        if y_drain > 0 {
            events.push(TraceEvent {
                group: None,
                start: INIT_CYCLES,
                end: INIT_CYCLES + y_drain,
                kind: EventKind::YDrain { bytes: y_bytes },
            });
        }
        let total_cycles = timing::total_cycles(&per_group_busy, y_bytes, cfg);
        ExecutionTrace {
            events,
            per_group_busy,
            total_cycles,
            num_groups: cfg.num_pe_groups,
        }
    }

    /// All events, init first, groups in index order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Busy cycles of each group (excluding init).
    pub fn per_group_busy(&self) -> &[u64] {
        &self.per_group_busy
    }

    /// Total cycles — identical to the perf model / simulator.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Fraction of group-cycles spent busy while the slowest group runs
    /// (1.0 = perfectly balanced).
    pub fn balance(&self) -> f64 {
        let max = self.per_group_busy.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let sum: u64 = self.per_group_busy.iter().sum();
        sum as f64 / (max as f64 * self.per_group_busy.len() as f64)
    }

    /// Cycles the critical (slowest) group spent in each activity class:
    /// `(compute, x_load, switch)`.
    pub fn critical_group_breakdown(&self) -> (u64, u64, u64) {
        let critical = self
            .per_group_busy
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .map(|(g, _)| g as u32);
        let mut compute = 0;
        let mut xload = 0;
        let mut switch = 0;
        for e in &self.events {
            if e.group != critical {
                continue;
            }
            match e.kind {
                EventKind::ComputeBound { .. } => compute += e.cycles(),
                EventKind::XLoadBound { .. } => xload += e.cycles(),
                EventKind::TileSwitch => switch += e.cycles(),
                _ => {}
            }
        }
        (compute, xload, switch)
    }

    /// Renders an ASCII Gantt chart, one row per group plus the y lane:
    /// `#` compute-bound, `x` x-load-bound, `.` switch/idle, `y` y drain.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width >= 10, "gantt needs at least 10 columns");
        let scale = self.total_cycles.max(1) as f64 / width as f64;
        let mut rows: Vec<Vec<char>> = vec![vec![' '; width]; self.num_groups as usize + 1];
        for e in &self.events {
            let row = match e.group {
                Some(g) => g as usize,
                None => match e.kind {
                    EventKind::YDrain { .. } => self.num_groups as usize,
                    _ => continue,
                },
            };
            let c = match e.kind {
                EventKind::ComputeBound { .. } => '#',
                EventKind::XLoadBound { .. } => 'x',
                EventKind::TileSwitch => '.',
                EventKind::YDrain { .. } => 'y',
                EventKind::Init => continue,
            };
            let s = (e.start as f64 / scale) as usize;
            let t = ((e.end as f64 / scale) as usize).max(s + 1).min(width);
            for slot in &mut rows[row][s..t] {
                *slot = c;
            }
        }
        let mut out = String::new();
        for (g, row) in rows.iter().enumerate() {
            if g < self.num_groups as usize {
                out.push_str(&format!("g{g:<2}|"));
            } else {
                out.push_str("y  |");
            }
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (c, x, s) = self.critical_group_breakdown();
        writeln!(
            f,
            "{} cycles, balance {:.2}; critical group: {c} compute / {x} x-load / {s} switch",
            self.total_cycles,
            self.balance()
        )?;
        f.write_str(&self.render_gantt(64))
    }
}

/// Convenience: trace straight from a tile-job list (used by tests).
pub fn trace_jobs(
    jobs: Vec<TileJob>,
    tile_size: u32,
    matrix_rows: u32,
    cfg: &HwConfig,
) -> (Vec<u64>, u64) {
    let mut heights: Vec<u32> = Vec::new();
    let mut last = None;
    for j in &jobs {
        if last != Some(j.tile_row) {
            heights.push((matrix_rows - (j.tile_row * tile_size).min(matrix_rows)).min(tile_size));
            last = Some(j.tile_row);
        }
    }
    let y = timing::y_bytes(heights);
    let assignment = timing::lpt_assign(jobs, cfg.num_pe_groups, tile_size, cfg);
    let per_group: Vec<u64> = assignment
        .iter()
        .map(|a| timing::group_cycles(a, tile_size, cfg))
        .collect();
    let total = timing::total_cycles(&per_group, y, cfg);
    (per_group, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf;
    use spasm_format::SubmatrixMap;
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn summary(n: u32, tile: u32) -> (TilingSummary, Coo) {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 1.0));
            t.push((i, (i * 3 + 1) % n, 2.0));
        }
        let coo = Coo::from_triplets(n, n, t).unwrap();
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        let s = TilingSummary::analyze(&SubmatrixMap::from_coo(&coo), &table, tile).unwrap();
        (s, coo)
    }

    #[test]
    fn trace_total_matches_perf_model() {
        for tile in [16u32, 64, 256] {
            let (s, _) = summary(256, tile);
            for cfg in HwConfig::shipped() {
                let trace = ExecutionTrace::capture(&s, &cfg);
                assert_eq!(
                    trace.total_cycles(),
                    perf::estimate_cycles(&s, &cfg),
                    "tile {tile} cfg {}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn events_are_contiguous_per_group() {
        let (s, _) = summary(512, 64);
        let cfg = HwConfig::spasm_4_1();
        let trace = ExecutionTrace::capture(&s, &cfg);
        for g in 0..cfg.num_pe_groups {
            let evs: Vec<_> = trace
                .events()
                .iter()
                .filter(|e| e.group == Some(g))
                .collect();
            for w in evs.windows(2) {
                assert_eq!(w[0].end, w[1].start, "group {g} timeline has gaps");
            }
            if let Some(first) = evs.first() {
                assert_eq!(first.start, INIT_CYCLES);
            }
        }
    }

    #[test]
    fn busy_cycles_match_group_cycles() {
        let (s, _) = summary(512, 64);
        let cfg = HwConfig::spasm_3_2();
        let trace = ExecutionTrace::capture(&s, &cfg);
        let jobs = perf::jobs_from_summary(&s);
        let assignment = timing::lpt_assign(jobs, cfg.num_pe_groups, s.tile_size(), &cfg);
        for (g, assigned) in assignment.iter().enumerate() {
            assert_eq!(
                trace.per_group_busy()[g],
                timing::group_cycles(assigned, s.tile_size(), &cfg)
            );
        }
    }

    #[test]
    fn balance_bounds() {
        let (s, _) = summary(1024, 64);
        let trace = ExecutionTrace::capture(&s, &HwConfig::spasm_4_1());
        let b = trace.balance();
        assert!(b > 0.0 && b <= 1.0, "balance {b}");
    }

    #[test]
    fn gantt_renders_all_lanes() {
        let (s, _) = summary(256, 64);
        let cfg = HwConfig::spasm_4_1();
        let trace = ExecutionTrace::capture(&s, &cfg);
        let gantt = trace.render_gantt(40);
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), cfg.num_pe_groups as usize + 1);
        assert!(lines[0].starts_with("g0 |"));
        assert!(lines.last().unwrap().starts_with("y  |"));
        // Some activity must appear.
        assert!(gantt.contains('#') || gantt.contains('x'));
    }

    #[test]
    fn breakdown_sums_to_busy() {
        let (s, _) = summary(512, 256);
        let cfg = HwConfig::spasm_4_1();
        let trace = ExecutionTrace::capture(&s, &cfg);
        let (c, x, sw) = trace.critical_group_breakdown();
        let max_busy = trace.per_group_busy().iter().copied().max().unwrap();
        assert_eq!(c + x + sw, max_busy);
    }

    #[test]
    fn trace_jobs_helper_agrees() {
        let (s, coo) = summary(256, 64);
        let cfg = HwConfig::spasm_3_4();
        let (_per_group, total) =
            trace_jobs(perf::jobs_from_summary(&s), s.tile_size(), coo.rows(), &cfg);
        assert_eq!(total, perf::estimate_cycles(&s, &cfg));
    }
}
