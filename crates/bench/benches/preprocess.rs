//! Benchmarks of the preprocessing stages (the cost side of Table VIII):
//! pattern analysis, template selection, decomposition-table construction,
//! Listing 1 vs the DP, schedule exploration — plus serial-vs-parallel
//! comparisons of the pipeline entry points (`prepare_set` over a batch of
//! Table II matrices, and `explore_schedule` over the default grid).
//!
//! Run with `cargo bench -p spasm-bench --bench preprocess`. Timing uses
//! the harness in `spasm_bench::timing` (no registry access for
//! criterion); speedups are reported, never asserted — on a single
//! hardware thread both sides time alike by design.

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_bench::timing::{bench, report_speedup};
use spasm_format::{SpasmMatrix, SubmatrixMap, TilingSummary};
use spasm_hw::{perf, HwConfig};
use spasm_patterns::selection::TopN;
use spasm_patterns::{
    find_best_decomp, select_template_set, DecompositionTable, GridSize, PatternHistogram,
    TemplateSet,
};
use spasm_workloads::{Scale, Workload};

fn bench_stages() {
    println!("== preprocessing stages (chebyshev4, small) ==");
    let m = Workload::Chebyshev4.generate(Scale::Small);
    let hist = PatternHistogram::analyze(&m, GridSize::S4);
    let candidates = TemplateSet::table_v_candidates();
    let map = SubmatrixMap::from_coo(&m);
    let outcome = select_template_set(&hist, &candidates, TopN::Coverage(0.95));

    bench("stage1_pattern_analysis", || {
        PatternHistogram::analyze(&m, GridSize::S4)
    });
    bench("stage1_submatrix_map", || SubmatrixMap::from_coo(&m));
    bench("stage2_template_selection", || {
        select_template_set(&hist, &candidates, TopN::Coverage(0.95))
    });
    bench("stage3_decomposition_table", || {
        DecompositionTable::build(&candidates[0])
    });
    bench("stage45_schedule_sweep", || {
        let mut best = u64::MAX;
        for tile in [256u32, 1024, 4096, 16384] {
            let s = TilingSummary::analyze(&map, &outcome.table, tile).unwrap();
            for cfg in HwConfig::shipped() {
                best = best.min(perf::estimate_cycles(&s, &cfg));
            }
        }
        best
    });
    bench("encode_stream", || {
        SpasmMatrix::encode(&map, &outcome.table, 1024).unwrap()
    });
}

fn bench_decomposition() {
    println!("\n== decomposition: Listing 1 vs DP ==");
    let set = TemplateSet::table_v_set(0);
    let masks: Vec<u16> = set.masks().collect();
    let table = DecompositionTable::build(&set);
    bench("listing1_exhaustive_one_pattern", || {
        find_best_decomp(0xBEEF, &masks)
    });
    bench("dp_lookup_one_pattern", || table.decompose(0xBEEF));
    bench("dp_all_65535_patterns", || {
        let mut acc = 0u64;
        for m in 1u16..=u16::MAX {
            acc += u64::from(table.instance_count(m).unwrap());
        }
        acc
    });
}

/// Serial vs parallel `prepare_set` over a batch of Table II matrices.
fn bench_prepare_set() {
    let batch: Vec<_> = [
        Workload::Mip1,
        Workload::C73,
        Workload::TmtSym,
        Workload::Chebyshev4,
        Workload::Raefsky3,
        Workload::Rim,
        Workload::Bbmat,
        Workload::Cfd2,
    ]
    .iter()
    .map(|w| w.generate(Scale::Small))
    .collect();
    println!(
        "\n== prepare_set over {} matrices (serial vs {} threads) ==",
        batch.len(),
        Parallelism::Auto.resolved_threads()
    );

    let serial_pipe =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial));
    let auto_pipe =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
    let serial = bench("prepare_set_serial", || {
        serial_pipe.prepare_set(&batch).unwrap()
    });
    let parallel = bench("prepare_set_parallel", || {
        auto_pipe.prepare_set(&batch).unwrap()
    });
    report_speedup("prepare_set", &serial, &parallel);
}

/// Serial vs parallel schedule exploration over the default grid.
fn bench_explore_schedule() {
    let m = Workload::Chebyshev4.generate(Scale::Small);
    let map = SubmatrixMap::from_coo(&m);
    let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    let tile_sizes = spasm::default_tile_sizes();
    let configs = HwConfig::shipped();
    println!(
        "\n== explore_schedule: {} tile sizes x {} configs ==",
        tile_sizes.len(),
        configs.len()
    );

    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool")
            .install(|| spasm::explore_schedule(&map, &table, &tile_sizes, &configs).unwrap())
    };
    let serial = bench("explore_schedule_serial", || run(1));
    let threads = Parallelism::Auto.resolved_threads().max(4);
    let parallel = bench("explore_schedule_parallel", || run(threads));
    report_speedup("explore_schedule", &serial, &parallel);
}

fn main() {
    spasm_bench::smoke_from_args();
    println!(
        "host threads: {} | parallel feature: {}",
        std::thread::available_parallelism().map_or(1, usize::from),
        cfg!(feature = "parallel")
    );
    bench_stages();
    bench_decomposition();
    bench_prepare_set();
    bench_explore_schedule();
}
