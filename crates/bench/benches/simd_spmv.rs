//! Class-kernel benchmark: the class-bucketed data-parallel executor
//! (`Dispatch::Classed`, the default) against the legacy per-instance
//! enum dispatcher (`Dispatch::PerInstance`) on the same prepared plan.
//!
//! The comparison isolates what the PR-7 hot-loop restructuring buys:
//! branch-free per-class kernels over the SoA streams, contiguous 4-slot
//! value loads, hoisted x-gather selectors, and `LANE_BLOCK` batch-lane
//! fusion. Built with `--features simd` the classed path additionally
//! runs the explicit SSE2 kernels; the emitted JSON records which
//! feature set was active so scalar and SIMD artifacts stay
//! distinguishable.
//!
//! Both dispatchers are asserted bit-identical before timing — the
//! classed executor stages per-instance outputs and scatters them in
//! stream order, so it is the same computation, not an approximation.
//! Results go to `BENCH_simd_spmv.json`.
//!
//! Run with `cargo bench -p spasm-bench --bench simd_spmv` (add
//! `--features simd` for the SSE2 kernels; `--smoke` for CI liveness).
//! `SPASM_BENCH_ASSERT=1` arms the batch-8 speedup floor.

use std::fmt::Write as _;
use std::time::Instant;

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_bench::timing::is_smoke;
use spasm_hw::Dispatch;
use spasm_workloads::Workload;

/// The serving batch width the acceptance floor is measured at.
const BATCH: usize = 8;

/// Per-batch wall-clock of `iters` timed repetitions, in seconds.
fn time_batch(iters: u32, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
        std::hint::black_box(&mut f);
    }
    t0.elapsed().as_secs_f64() / f64::from(iters.max(1))
}

struct Row {
    workload: String,
    nnz: usize,
    per_instance_s: f64,
    classed_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.per_instance_s / self.classed_s.max(1e-12)
    }
}

fn main() {
    spasm_bench::smoke_from_args();
    let scale = spasm_bench::scale_from_args();
    println!(
        "classed-kernel SpMV | scale: {} | parallel: {} | simd: {}",
        spasm_bench::scale_name(scale),
        cfg!(feature = "parallel"),
        cfg!(feature = "simd")
    );

    // Same structural cross-section as the other serving benches.
    let picks = [
        Workload::Raefsky3,
        Workload::C73,
        Workload::TmtSym,
        Workload::Cfd2,
    ];
    let iters: u32 = if is_smoke() { 1 } else { 50 };

    let mut rows: Vec<Row> = Vec::new();
    for w in picks {
        let m = w.generate(scale);
        let n_cols = m.cols() as usize;
        let n_rows = m.rows() as usize;

        let pipeline =
            Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
        let prepared = pipeline.prepare(&m).expect("pipeline");
        let mut plan = prepared
            .accelerator()
            .prepare(&prepared.encoded)
            .expect("prepare");

        let xs: Vec<Vec<f32>> = (0..BATCH)
            .map(|j| {
                (0..n_cols)
                    .map(|i| (((i + 3 * j) % 9) as f32) * 0.5 - 2.0)
                    .collect()
            })
            .collect();

        // Bit-identity gate: the classed (and, under `simd`, SSE2) path
        // must be the same computation as the per-instance reference.
        let mut want = vec![vec![0.0f32; n_rows]; BATCH];
        plan.set_dispatch(Dispatch::PerInstance);
        plan.run_batch(&xs, &mut want).expect("run_batch");
        let mut got = vec![vec![0.0f32; n_rows]; BATCH];
        plan.set_dispatch(Dispatch::Classed);
        plan.run_batch(&xs, &mut got).expect("run_batch");
        for (j, (g, ww)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ww.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{w}: classed dispatch vector {j} diverged from per-instance"
            );
        }

        let mut ys = vec![vec![0.0f32; n_rows]; BATCH];
        plan.set_dispatch(Dispatch::PerInstance);
        let per_instance_s = time_batch(iters, || {
            for y in ys.iter_mut() {
                y.fill(0.0);
            }
            plan.run_batch(&xs, &mut ys).expect("run_batch");
        });
        plan.set_dispatch(Dispatch::Classed);
        let classed_s = time_batch(iters, || {
            for y in ys.iter_mut() {
                y.fill(0.0);
            }
            plan.run_batch(&xs, &mut ys).expect("run_batch");
        });

        let row = Row {
            workload: w.to_string(),
            nnz: m.nnz(),
            per_instance_s,
            classed_s,
        };
        println!(
            "{:<14} {:>9} nnz  per-instance {:>10.1} us/batch  classed {:>10.1} us/batch  {:>6.2}x",
            row.workload,
            row.nnz,
            row.per_instance_s * 1e6,
            row.classed_s * 1e6,
            row.speedup(),
        );
        rows.push(row);
    }

    let geomean = spasm_bench::geomean(rows.iter().map(Row::speedup));
    println!("geomean classed-kernel speedup at batch {BATCH}: {geomean:.2}x");
    // Opt-in floor (SPASM_BENCH_ASSERT=1): the restructured hot loop must
    // beat per-instance enum dispatch by >= 1.15x geomean at batch 8.
    spasm_bench::maybe_assert_speedup("simd_spmv classed-kernel batch-8 speedup", geomean, 1.15);

    // Hand-rolled JSON (no serde in the build environment).
    let mut json = String::from("{\n  \"bench\": \"simd_spmv\",\n");
    json.push_str(&spasm_bench::metadata_json());
    let _ = writeln!(json, "  \"smoke\": {},", is_smoke());
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"geomean_classed_speedup\": {geomean},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"nnz\": {}, \
             \"per_instance_per_batch_s\": {}, \"classed_per_batch_s\": {}, \
             \"speedup\": {}}}",
            r.workload,
            r.nnz,
            r.per_instance_s,
            r.classed_s,
            r.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    // cargo bench runs with the package dir as cwd; anchor the artifact at
    // the workspace root where CI picks it up.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd_spmv.json");
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");
}
