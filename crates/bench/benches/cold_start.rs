//! Cold-start benchmark: wire-v3 mapped plans (`spasm-store`) against
//! the v2 decode-and-re-prepare ingest path.
//!
//! Both sides start from serialised bytes and end at the same place — a
//! `Prepared` ready to serve its first SpMV:
//!
//! * **v2** — `SpasmMatrix::from_bytes` + the full pipeline prepare
//!   (selection, schedule search, plan build), the path a serving node
//!   pays today for every matrix not already resident;
//! * **v3** — one aligned buffer copy, container + plan validation, and
//!   `Prepared::restore` around streams that *borrow* the buffer. No
//!   preprocessing re-runs and no stream bytes are copied.
//!
//! Each thawed plan is asserted bit-identical to the freshly prepared
//! one before timing. Results (plus owned-vs-mapped byte counters) go to
//! `BENCH_cold_start.json`.
//!
//! Run with `cargo bench -p spasm-bench --bench cold_start` (`--smoke`
//! for CI liveness). `SPASM_BENCH_ASSERT=1` arms the v3-vs-v2 load
//! speedup floor.

use std::fmt::Write as _;
use std::time::Instant;

use spasm::{Parallelism, Pipeline, PipelineOptions, Prepared};
use spasm_bench::timing::is_smoke;
use spasm_format::SpasmMatrix;
use spasm_store::{save_v3, FrozenPlan, PlanBuffer};
use spasm_workloads::Workload;

/// Wall-clock of `iters` repetitions of `f`, in seconds per repetition.
fn time_each<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / f64::from(iters.max(1))
}

struct Row {
    workload: String,
    nnz: usize,
    v2_bytes: usize,
    v3_bytes: usize,
    v2_load_s: f64,
    v3_load_s: f64,
    plan_mapped_bytes: usize,
    plan_owned_bytes: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.v2_load_s / self.v3_load_s.max(1e-12)
    }
}

/// The full v2 cold start: decode the stream, re-run the pipeline.
fn thaw_v2(bytes: &[u8], pipeline: &Pipeline) -> Prepared {
    let decoded = SpasmMatrix::from_bytes(bytes).expect("v2 decode");
    pipeline.prepare(&decoded.to_coo()).expect("v2 prepare")
}

/// The full v3 cold start: aligned copy, validate, map, restore.
fn thaw_v3(bytes: &[u8]) -> Prepared {
    let frozen = FrozenPlan::open(PlanBuffer::from_bytes(bytes)).expect("v3 open");
    let encoded = frozen.matrix().expect("v3 matrix");
    let plan = frozen.into_plan().expect("v3 thaw");
    Prepared::restore(
        encoded,
        plan,
        Parallelism::Auto,
        spasm::IntegrityPolicy::off(),
    )
    .expect("restore")
}

fn main() {
    spasm_bench::smoke_from_args();
    let scale = spasm_bench::scale_from_args();
    println!(
        "cold start: v3 mapped plans vs v2 re-prepare | scale: {} | parallel: {} | simd: {}",
        spasm_bench::scale_name(scale),
        cfg!(feature = "parallel"),
        cfg!(feature = "simd")
    );

    // Same structural cross-section as the other serving benches.
    let picks = [
        Workload::Raefsky3,
        Workload::C73,
        Workload::TmtSym,
        Workload::Cfd2,
    ];
    let iters: u32 = if is_smoke() { 1 } else { 10 };

    let mut rows: Vec<Row> = Vec::new();
    for w in picks {
        let m = w.generate(scale);
        let pipeline =
            Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
        let mut fresh = pipeline.prepare(&m).expect("pipeline");
        let v2 = fresh.encoded.to_bytes().to_vec();
        let v3 = save_v3(&fresh.encoded, &fresh.plan).expect("save_v3");

        // Bit-identity gate: the thawed plan must produce exactly the
        // freshly prepared plan's output.
        let n_cols = m.cols() as usize;
        let n_rows = m.rows() as usize;
        let x: Vec<f32> = (0..n_cols).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
        let mut want = vec![0.0f32; n_rows];
        fresh.execute(&x, &mut want).expect("fresh execute");
        let mut thawed = thaw_v3(&v3);
        let mut got = vec![0.0f32; n_rows];
        thawed.execute(&x, &mut got).expect("thawed execute");
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{w}: thawed v3 plan diverged from fresh prepare"
        );
        let plan_mapped_bytes = thawed.plan.mapped_bytes();
        let plan_owned_bytes = thawed.plan.memory_bytes();

        let v2_load_s = time_each(iters, || thaw_v2(&v2, &pipeline));
        let v3_load_s = time_each(iters, || thaw_v3(&v3));

        let row = Row {
            workload: w.to_string(),
            nnz: m.nnz(),
            v2_bytes: v2.len(),
            v3_bytes: v3.len(),
            v2_load_s,
            v3_load_s,
            plan_mapped_bytes,
            plan_owned_bytes,
        };
        println!(
            "{:<14} {:>9} nnz  v2 {:>10.2} ms  v3 {:>10.3} ms  {:>7.1}x  ({} mapped / {} owned bytes)",
            row.workload,
            row.nnz,
            row.v2_load_s * 1e3,
            row.v3_load_s * 1e3,
            row.speedup(),
            row.plan_mapped_bytes,
            row.plan_owned_bytes,
        );
        rows.push(row);
    }

    let geomean = spasm_bench::geomean(rows.iter().map(Row::speedup));
    println!("geomean v3-vs-v2 cold-start speedup: {geomean:.1}x");
    // Opt-in floor (SPASM_BENCH_ASSERT=1): mapping a frozen plan must
    // beat decode-and-re-prepare by >= 5x geomean.
    spasm_bench::maybe_assert_speedup("cold_start v3-vs-v2 load speedup", geomean, 5.0);

    // Hand-rolled JSON (no serde in the build environment).
    let mut json = String::from("{\n  \"bench\": \"cold_start\",\n");
    json.push_str(&spasm_bench::metadata_json());
    let _ = writeln!(json, "  \"smoke\": {},", is_smoke());
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"geomean_v3_speedup\": {geomean},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"nnz\": {}, \
             \"v2_wire_bytes\": {}, \"v3_wire_bytes\": {}, \
             \"v2_load_s\": {}, \"v3_load_s\": {}, \"speedup\": {}, \
             \"plan_mapped_bytes\": {}, \"plan_owned_bytes\": {}}}",
            r.workload,
            r.nnz,
            r.v2_bytes,
            r.v3_bytes,
            r.v2_load_s,
            r.v3_load_s,
            r.speedup(),
            r.plan_mapped_bytes,
            r.plan_owned_bytes,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    // cargo bench runs with the package dir as cwd; anchor the artifact at
    // the workspace root where CI picks it up.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cold_start.json");
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");
}
