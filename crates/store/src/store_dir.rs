//! A directory of frozen plans keyed by matrix fingerprint.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use spasm_format::{MatrixFingerprint, SpasmMatrix};
use spasm_hw::ExecutionPlan;

use crate::buffer::PlanBuffer;
use crate::frozen::FrozenPlan;
use crate::save::save_v3;
use crate::StoreError;

/// A plan store: one wire-v3 file per `(matrix, config)` pair under a
/// root directory, named by the matrix fingerprint token.
///
/// Writes are atomic (temp file + rename), so a crashed save never
/// leaves a partial container where a loader could find it; loads map
/// the file read-only and validate before trusting a byte.
#[derive(Debug, Clone)]
pub struct PlanStore {
    root: PathBuf,
}

impl PlanStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<PlanStore, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(PlanStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file path a fingerprint maps to (the token's `:` becomes `-`
    /// so the name is portable).
    pub fn path_for(&self, fp: &MatrixFingerprint) -> PathBuf {
        self.root
            .join(format!("{}.spasm3", fp.token().replace(':', "-")))
    }

    /// `true` when a plan for `fp` is on disk.
    pub fn contains(&self, fp: &MatrixFingerprint) -> bool {
        self.path_for(fp).is_file()
    }

    /// Freezes `(matrix, plan)` and writes it atomically, returning the
    /// file path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wire`] when the pair is inconsistent,
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, matrix: &SpasmMatrix, plan: &ExecutionPlan) -> Result<PathBuf, StoreError> {
        let bytes = save_v3(matrix, plan)?;
        let fp = MatrixFingerprint::of_wire_bytes(&matrix.to_bytes())?;
        let path = self.path_for(&fp);
        let tmp = path.with_extension("spasm3.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Maps and structurally validates the stored plan for `fp`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file is absent or unreadable,
    /// [`StoreError::Wire`] when its bytes are corrupt.
    pub fn load(&self, fp: &MatrixFingerprint) -> Result<FrozenPlan, StoreError> {
        self.load_path(&self.path_for(fp))
    }

    /// Maps and structurally validates the container at `path`.
    ///
    /// # Errors
    ///
    /// As [`PlanStore::load`].
    pub fn load_path(&self, path: &Path) -> Result<FrozenPlan, StoreError> {
        let buffer: Arc<PlanBuffer> = PlanBuffer::open(path)?;
        FrozenPlan::open(buffer)
    }
}
