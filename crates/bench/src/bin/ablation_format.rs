//! Format ablation (extension): how much of SPASM's throughput comes from
//! the template-pattern *format* versus the parallel architecture?
//!
//! We price a hypothetical "scalar mode" of the same accelerator: the same
//! PE groups, channels and tiling, but streaming one 8-byte
//! (value + packed index) element per operation with no templates — each
//! PE retires at most one scalar MAC per cycle and the value channel feeds
//! 4 PEs at 8 B per op. Comparing against the real pipeline isolates the
//! vectorised-template benefit, including where padding erodes it.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin ablation_format [-- --scale paper]
//! ```

use std::collections::HashMap;

use spasm::Pipeline;
use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_format::SubmatrixMap;
use spasm_hw::{timing, HwConfig};

/// Scalar-mode issue rate per PE: one MAC per cycle, bounded by the
/// shared value channel (4 PEs, 8 B per op → `bpc / 32` ops/PE/cycle).
fn scalar_issue_rate(cfg: &HwConfig) -> f64 {
    (cfg.channel_bytes_per_cycle() / 32.0).min(1.0)
}

/// Cycles for scalar mode over the same tiling: per tile, the critical
/// lane's nnz at the scalar issue rate vs the x prefetch.
fn scalar_cycles(map: &SubmatrixMap, tile_size: u32, cfg: &HwConfig) -> u64 {
    let subs_per_tile = tile_size / 4;
    struct Acc {
        nnz: u64,
        lanes: [u64; 16],
    }
    let mut tiles: HashMap<(u32, u32), Acc> = HashMap::new();
    for b in map.blocks() {
        let key = (b.sub_r / subs_per_tile, b.sub_c / subs_per_tile);
        let lane = ((b.sub_r % subs_per_tile) as usize) % 16;
        let acc = tiles.entry(key).or_insert(Acc {
            nnz: 0,
            lanes: [0; 16],
        });
        let n = u64::from(b.mask.count_ones());
        acc.nnz += n;
        acc.lanes[lane] += n;
    }
    let mut jobs: Vec<(u32, u32, u64, u64)> = tiles
        .into_iter()
        .map(|((tr, tc), acc)| {
            (
                tr,
                tc,
                acc.nnz,
                acc.lanes.iter().copied().max().unwrap_or(0),
            )
        })
        .collect();
    jobs.sort_unstable();

    let issue = scalar_issue_rate(cfg);
    let x_load = timing::x_load_cycles(tile_size, cfg);
    let cost = |max_lane: u64| -> u64 {
        ((max_lane as f64 / issue).ceil() as u64).max(x_load) + timing::TILE_SWITCH_CYCLES
    };
    // LPT by cost across groups, mirroring the real scheduler.
    jobs.sort_by_key(|&(tr, tc, _, lane)| (std::cmp::Reverse(cost(lane)), tr, tc));
    let mut loads = vec![0u64; cfg.num_pe_groups as usize];
    let mut heights: Vec<u32> = Vec::new();
    let mut seen_rows = std::collections::HashSet::new();
    for &(tr, _, _, lane) in &jobs {
        let g = (0..loads.len())
            .min_by_key(|&i| (loads[i], i))
            .expect("groups > 0");
        loads[g] += cost(lane);
        if seen_rows.insert(tr) {
            heights.push((map.rows() - (tr * tile_size).min(map.rows())).min(tile_size));
        }
    }
    // First-tile x load is exposed per busy group.
    for l in &mut loads {
        if *l > 0 {
            *l += x_load;
        }
    }
    timing::total_cycles(&loads, timing::y_bytes(heights), cfg)
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Format ablation — template stream vs scalar stream on the same hardware ({})",
        scale_name(scale)
    );
    rule(84);
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "matrix", "scalar GF/s", "SPASM GF/s", "gain", "pad rate", "tile"
    );
    rule(84);
    let pipeline = Pipeline::new();
    let mut gains = Vec::new();
    spasm_bench::for_each_workload(scale, |w, m| {
        let mut prepared = pipeline.prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let exec = prepared.execute(&x, &mut y).expect("simulate");

        let map = SubmatrixMap::from_coo(&m);
        let cfg = &prepared.best.config;
        let sc = scalar_cycles(&map, prepared.best.tile_size, cfg);
        let scalar_gflops =
            (2.0 * m.nnz() as f64 + m.rows() as f64) / cfg.cycles_to_seconds(sc) / 1e9;

        let gain = exec.gflops / scalar_gflops;
        gains.push(gain);
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>9.2}x {:>11.1}% {:>10}",
            w.to_string(),
            scalar_gflops,
            exec.gflops,
            gain,
            100.0 * prepared.encoded.padding_rate(),
            prepared.best.tile_size
        );
    });
    rule(84);
    println!(
        "geomean gain from the template-pattern format: {:.2}x \
         (same groups, channels and schedule; only the stream differs)",
        geomean(gains.iter().copied())
    );
    println!(
        "(the format's 4-wide instances beat the scalar stream unless padding \
         approaches ~72%, where the vector slots carry mostly zeros)"
    );
}
