//! Sparse-matrix substrate for the SPASM reproduction.
//!
//! This crate provides the classic sparse storage formats that the SPASM
//! paper compares against (COO, CSR, CSC, BSR, DIA, ELL), conversions
//! between them, reference SpMV (`y = A·x + y`) implementations for each
//! format, Matrix Market I/O, and per-format storage-cost models used by the
//! paper's storage comparison (Fig. 11 / Table VI).
//!
//! # Example
//!
//! ```
//! use spasm_sparse::{Coo, Csr, SpMv};
//!
//! # fn main() -> Result<(), spasm_sparse::SparseError> {
//! let coo = Coo::from_triplets(3, 3, vec![(0, 0, 2.0), (1, 2, 1.0), (2, 1, -1.0)])?;
//! let csr = Csr::from(&coo);
//! let x = vec![1.0f32, 2.0, 3.0];
//! let mut y = vec![0.0f32; 3];
//! csr.spmv(&x, &mut y)?;
//! assert_eq!(y, vec![2.0, 3.0, -2.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bsr;
mod coo;
mod csc;
mod csr;
mod delta;
mod dense;
mod dia;
mod ell;
mod error;
pub mod mm;
pub mod reorder;
mod spmv;
pub mod spy;
pub mod storage;

pub use bsr::Bsr;
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use delta::{DeltaError, DeltaOp, MatrixDelta};
pub use dense::Dense;
pub use dia::Dia;
pub use ell::Ell;
pub use error::SparseError;
pub use spmv::{Shaped, SpMv};
pub use storage::StorageCost;

/// The scalar type used throughout the reproduction.
///
/// The SPASM hardware operates on 32-bit floats (4-byte values in the
/// position-encoded stream), so the whole stack is fixed to `f32`.
pub type Value = f32;

/// Row/column index type. 32-bit, matching the paper's storage model
/// assumption that "indices in COO, CSR, and BSR are 32-bit int".
pub type Index = u32;

/// A `(row, col, value)` triplet, the interchange currency between formats.
pub type Triplet = (Index, Index, Value);
