//! The analytic performance model used by Algorithm 4's
//! `PERF_MODEL(GC_list, hw_config, tile_size)`.
//!
//! Prices a [`TilingSummary`] (global composition) on a hardware
//! configuration without touching matrix values. Because it shares every
//! term with the full simulator's timing path, its cycle counts equal
//! [`crate::Accelerator::run`]'s exactly — the scheduler's choices
//! transfer 1:1 to execution.

use spasm_format::TilingSummary;

use crate::config::HwConfig;
use crate::timing::{self, TileJob};

/// A performance estimate for one (matrix, tile size, configuration)
/// combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Estimated total cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configuration's frequency.
    pub seconds: f64,
    /// Throughput by the paper's formula `(2·nnz + rows) / time`.
    pub gflops: f64,
}

/// Converts a tile directory into scheduler jobs.
pub fn jobs_from_summary(summary: &TilingSummary) -> Vec<TileJob> {
    summary
        .tiles()
        .iter()
        .map(|t| TileJob {
            tile_row: t.tile_row,
            tile_col: t.tile_col,
            n_instances: t.n_instances,
            max_lane_instances: t.max_lane_instances,
        })
        .collect()
}

/// Estimates total cycles for a tiling on a configuration.
pub fn estimate_cycles(summary: &TilingSummary, cfg: &HwConfig) -> u64 {
    let jobs = jobs_from_summary(summary);
    let y = timing::y_bytes(summary.worked_row_heights());
    let assignment = timing::lpt_assign(jobs, cfg.num_pe_groups, summary.tile_size(), cfg);
    let per_group: Vec<u64> = assignment
        .iter()
        .map(|a| timing::group_cycles(a, summary.tile_size(), cfg))
        .collect();
    timing::total_cycles(&per_group, y, cfg)
}

/// Full estimate including wall-clock time and the paper's GFLOP/s metric.
pub fn estimate(summary: &TilingSummary, nnz: usize, cfg: &HwConfig) -> PerfEstimate {
    let cycles = estimate_cycles(summary, cfg);
    let seconds = cfg.cycles_to_seconds(cycles);
    let flops = 2.0 * nnz as f64 + summary.matrix_rows() as f64;
    PerfEstimate {
        cycles,
        seconds,
        gflops: flops / seconds / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_format::SubmatrixMap;
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn summary(coo: &Coo, tile: u32) -> TilingSummary {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        TilingSummary::analyze(&SubmatrixMap::from_coo(coo), &table, tile).unwrap()
    }

    fn banded(n: u32) -> Coo {
        banded_wide(n, 1)
    }

    fn banded_wide(n: u32, half_band: u32) -> Coo {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            for k in 1..=half_band {
                if i + k < n {
                    t.push((i, i + k, -1.0));
                    t.push((i + k, i, -1.0));
                }
            }
        }
        Coo::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn jobs_mirror_tiles() {
        let m = banded(128);
        let s = summary(&m, 32);
        let jobs = jobs_from_summary(&s);
        assert_eq!(jobs.len(), s.tiles().len());
        assert_eq!(
            jobs.iter().map(|j| j.n_instances).sum::<usize>(),
            s.n_instances()
        );
    }

    #[test]
    fn more_groups_never_slower() {
        let m = banded(2048);
        let s = summary(&m, 64);
        let small = estimate_cycles(&s, &HwConfig::new(1, 1, 252.0));
        let big = estimate_cycles(&s, &HwConfig::new(4, 1, 252.0));
        assert!(big <= small, "big={big} small={small}");
    }

    #[test]
    fn oversized_tiles_starve_groups() {
        // With one giant tile, a single group does all the work and its x
        // load is exposed; mid-size tiles parallelise across groups. The
        // band is wide enough that compute, not the y drain, dominates.
        let m = banded_wide(8192, 32);
        let cfg = HwConfig::spasm_4_1();
        let coarse = estimate_cycles(&summary(&m, 8192), &cfg);
        let mid = estimate_cycles(&summary(&m, 1024), &cfg);
        assert!(mid < coarse, "mid={mid} coarse={coarse}");
    }

    #[test]
    fn gflops_uses_paper_formula() {
        let m = banded(256);
        let s = summary(&m, 64);
        let cfg = HwConfig::spasm_4_1();
        let e = estimate(&s, m.nnz(), &cfg);
        let expect = (2.0 * m.nnz() as f64 + m.rows() as f64) / e.seconds / 1e9;
        assert!((e.gflops - expect).abs() < 1e-9);
        assert!(e.gflops > 0.0 && e.gflops < cfg.peak_gflops());
    }
}
