//! Criterion benchmarks of the preprocessing stages (the cost side of
//! Table VIII): pattern analysis, template selection, decomposition-table
//! construction, Listing 1 vs the DP, and schedule exploration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spasm_format::{SpasmMatrix, SubmatrixMap, TilingSummary};
use spasm_hw::{perf, HwConfig};
use spasm_patterns::selection::TopN;
use spasm_patterns::{
    find_best_decomp, select_template_set, DecompositionTable, GridSize,
    PatternHistogram, TemplateSet,
};
use spasm_workloads::{Scale, Workload};

fn bench_stages(c: &mut Criterion) {
    let m = Workload::Chebyshev4.generate(Scale::Small);
    let hist = PatternHistogram::analyze(&m, GridSize::S4);
    let candidates = TemplateSet::table_v_candidates();
    let map = SubmatrixMap::from_coo(&m);
    let outcome = select_template_set(&hist, &candidates, TopN::Coverage(0.95));

    let mut g = c.benchmark_group("preprocess");
    g.bench_function("stage1_pattern_analysis", |b| {
        b.iter(|| PatternHistogram::analyze(&m, GridSize::S4))
    });
    g.bench_function("stage1_submatrix_map", |b| b.iter(|| SubmatrixMap::from_coo(&m)));
    g.bench_function("stage2_template_selection", |b| {
        b.iter(|| select_template_set(&hist, &candidates, TopN::Coverage(0.95)))
    });
    g.bench_function("stage3_decomposition_table", |b| {
        b.iter(|| DecompositionTable::build(&candidates[0]))
    });
    g.bench_function("stage45_schedule_sweep", |b| {
        b.iter(|| {
            let mut best = u64::MAX;
            for tile in [256u32, 1024, 4096, 16384] {
                let s = TilingSummary::analyze(&map, &outcome.table, tile).unwrap();
                for cfg in HwConfig::shipped() {
                    best = best.min(perf::estimate_cycles(&s, &cfg));
                }
            }
            best
        })
    });
    g.bench_function("encode_stream", |b| {
        b.iter(|| SpasmMatrix::encode(&map, &outcome.table, 1024).unwrap())
    });
    g.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let set = TemplateSet::table_v_set(0);
    let masks: Vec<u16> = set.masks().collect();
    let table = DecompositionTable::build(&set);
    let mut g = c.benchmark_group("decompose");
    // The paper's Listing 1 exhaustive search vs the equivalent DP lookup.
    g.bench_function("listing1_exhaustive_one_pattern", |b| {
        b.iter(|| find_best_decomp(0xBEEF, &masks))
    });
    g.bench_function("dp_lookup_one_pattern", |b| b.iter(|| table.decompose(0xBEEF)));
    g.bench_function("dp_all_65535_patterns", |b| {
        b.iter_batched(
            || (),
            |()| {
                let mut acc = 0u64;
                for m in 1u16..=u16::MAX {
                    acc += u64::from(table.instance_count(m).unwrap());
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_stages, bench_decomposition);
criterion_main!(benches);
