//! Cross-crate integration tests: the full SPASM pipeline against every
//! workload class, baseline comparisons, and the ablation ordering.

use spasm::{Pipeline, PipelineOptions};
use spasm_baselines::{CusparseGpu, HiSparse, MatrixProfile, Platform, Serpens};

use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;
use spasm_sparse::{Csr, SpMv, StorageCost};
use spasm_workloads::{Scale, Workload};

/// The pipeline must produce numerically correct SpMV for every workload
/// class in the suite.
#[test]
fn pipeline_correct_on_all_workload_classes() {
    // One representative per structural class keeps this fast.
    let picks = [
        Workload::Mycielskian14, // random graph
        Workload::Raefsky3,      // aligned FEM blocks
        Workload::X104,          // unaligned FEM blocks
        Workload::TmtSym,        // stencil
        Workload::C73,           // anti-diagonal stencil
        Workload::StormG21000,   // staircase
        Workload::Cfd2,          // mixed fragments
    ];
    for w in picks {
        let a = w.generate(Scale::Small);
        let mut prepared = Pipeline::new().prepare(&a).unwrap_or_else(|e| {
            panic!("{w}: prepare failed: {e}");
        });
        let n = a.cols() as usize;
        let x: Vec<f32> = (0..n)
            .map(|i| ((i * 31 + 7) % 13) as f32 * 0.25 - 1.5)
            .collect();
        let mut want = vec![0.0f32; a.rows() as usize];
        Csr::from(&a).spmv(&x, &mut want).unwrap();
        let mut got = vec![0.0f32; a.rows() as usize];
        prepared.execute(&x, &mut got).unwrap();
        for (i, (g, wv)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - wv).abs() <= 2e-3 * (1.0 + wv.abs()),
                "{w} row {i}: {g} vs {wv}"
            );
        }
    }
}

/// Decode must reproduce the original matrix for every workload.
#[test]
fn encoding_lossless_on_suite() {
    for w in Workload::ALL {
        let a = w.generate(Scale::Small);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert_eq!(prepared.encoded.to_coo(), a, "{w}");
    }
}

/// Fig. 14's ordering: full framework ≤ schedule-only ≤ fixed baseline in
/// predicted execution time.
#[test]
fn ablation_ordering_holds() {
    for w in [Workload::Mip1, Workload::C73, Workload::TmtSym] {
        let a = w.generate(Scale::Small);
        let fixed = Pipeline::with_options(
            PipelineOptions::default()
                .fixed_portfolio(TemplateSet::table_v_set(0))
                .fixed_schedule(1024, HwConfig::spasm_4_1()),
        )
        .prepare(&a)
        .unwrap();
        let sched_only = Pipeline::with_options(
            PipelineOptions::default().fixed_portfolio(TemplateSet::table_v_set(0)),
        )
        .prepare(&a)
        .unwrap();
        let full = Pipeline::new().prepare(&a).unwrap();

        let secs = |p: &spasm::Prepared| p.best.config.cycles_to_seconds(p.best.predicted_cycles);
        assert!(
            secs(&sched_only) <= secs(&fixed) + 1e-15,
            "{w}: ⑤ must not hurt"
        );
        assert!(
            secs(&full) <= secs(&sched_only) + 1e-15,
            "{w}: ② must not hurt"
        );
    }
}

/// The SPASM format must beat COO on storage for structured matrices and
/// the suite-wide average must favour SPASM (Table VI's qualitative
/// claim).
#[test]
fn storage_improvement_on_structured_matrices() {
    let mut improvements = Vec::new();
    for w in Workload::ALL {
        let a = w.generate(Scale::Small);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        let coo_bytes = a.storage_bytes();
        let spasm_bytes = prepared.encoded.storage_bytes();
        improvements.push(coo_bytes as f64 / spasm_bytes as f64);
    }
    let geomean = spasm_sparse::storage::geometric_mean(improvements.iter().copied());
    assert!(
        geomean > 1.2,
        "suite geomean improvement {geomean:.2} too small"
    );
    // The fully-blocked FEM matrix must approach the format's best case
    // (2.4x = 48 COO bytes per 20-byte instance of 4 nz).
    let raefsky = Workload::Raefsky3.generate(Scale::Small);
    let p = Pipeline::new().prepare(&raefsky).unwrap();
    let imp = raefsky.storage_bytes() as f64 / p.encoded.storage_bytes() as f64;
    assert!(imp > 2.3, "raefsky3 improvement {imp:.2}");
}

/// SPASM must outperform the FPGA baselines on well-patterned matrices
/// (the headline of Fig. 12).
#[test]
fn spasm_beats_fpga_baselines_on_patterned_matrices() {
    // Block-structured matrices are SPASM's strong suit; y-channel-bound
    // ultra-sparse matrices (tmt_*) are closer races and are covered by
    // the fig12 geomean harness instead.
    for w in [Workload::Raefsky3, Workload::X104, Workload::MlLaplace] {
        let a = w.generate(Scale::Small);
        let profile = MatrixProfile::from_coo(&a);
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let mut y = vec![0.0f32; a.rows() as usize];
        let exec = prepared
            .execute(&vec![1.0; a.cols() as usize], &mut y)
            .unwrap();

        let serpens = Serpens::a24().report(&profile);
        let hisparse = HiSparse::new().report(&profile);
        assert!(
            exec.gflops > serpens.gflops,
            "{w}: SPASM {:.1} vs Serpens_a24 {:.1}",
            exec.gflops,
            serpens.gflops
        );
        assert!(
            exec.gflops > hisparse.gflops,
            "{w}: SPASM {:.1} vs HiSparse {:.1}",
            exec.gflops,
            hisparse.gflops
        );
    }
}

/// The GPU baseline produces sane estimates for every workload.
#[test]
fn gpu_baseline_sane_on_suite() {
    for w in Workload::ALL {
        let a = w.generate(Scale::Small);
        let profile = MatrixProfile::from_coo(&a);
        let r = CusparseGpu::new().report(&profile);
        assert!(r.seconds > 0.0 && r.gflops > 0.0, "{w}");
        assert!(
            r.gflops < 300.0,
            "{w}: GPU estimate {:.1} beyond roofline",
            r.gflops
        );
    }
}

/// Preprocessing timings are recorded and the schedule trace covers the
/// full search space.
#[test]
fn preprocessing_bookkeeping() {
    let a = Workload::Chebyshev4.generate(Scale::Small);
    let p = Pipeline::new().prepare(&a).unwrap();
    assert!(p.timings.total().as_nanos() > 0);
    let opts = PipelineOptions::default();
    assert_eq!(p.explored.len(), opts.tile_sizes.len() * opts.configs.len());
}

/// The binary wire format round-trips for every workload.
#[test]
fn wire_serialisation_on_suite() {
    for w in [
        Workload::Raefsky3,
        Workload::Cfd2,
        Workload::C73,
        Workload::TmtSym,
    ] {
        let a = w.generate(Scale::Small);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        let bytes = prepared.encoded.to_bytes();
        let back = spasm_format::SpasmMatrix::from_bytes(&bytes).unwrap();
        assert_eq!(back, prepared.encoded, "{w}");
    }
}

/// One shared portfolio over a mixed set of workloads still executes every
/// member correctly (the abstract's deployment model).
#[test]
fn shared_portfolio_across_workload_set() {
    let set: Vec<_> = [Workload::Raefsky3, Workload::C73, Workload::TmtSym]
        .iter()
        .map(|w| w.generate(Scale::Small))
        .collect();
    let mut prepared = Pipeline::new().prepare_set(&set).unwrap();
    let names: Vec<_> = prepared.iter().map(|p| p.selection.set.name()).collect();
    assert!(
        names.windows(2).all(|w| w[0] == w[1]),
        "one portfolio: {names:?}"
    );
    for (m, p) in set.iter().zip(&mut prepared) {
        let x = vec![1.0f32; m.cols() as usize];
        let mut want = vec![0.0f32; m.rows() as usize];
        Csr::from(m).spmv(&x, &mut want).unwrap();
        let mut got = vec![0.0f32; m.rows() as usize];
        p.execute(&x, &mut got).unwrap();
        for (g, wv) in got.iter().zip(&want) {
            assert!((g - wv).abs() <= 2e-3 * (1.0 + wv.abs()));
        }
    }
}

/// The DBB portfolio encodes 2:4-pruned weights with zero padding and
/// wins selection when offered.
#[test]
fn dbb_portfolio_on_pruned_weights() {
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
    let w = spasm_workloads::nm_pruned(&mut rng, 128, 256, 2, 4, true);
    let mut candidates = TemplateSet::table_v_candidates();
    candidates.push(TemplateSet::dbb());
    let options = spasm::PipelineOptions {
        candidates,
        ..Default::default()
    };
    let prepared = Pipeline::with_options(options).prepare(&w).unwrap();
    assert_eq!(prepared.selection.set.name(), "dbb-2:4");
    assert_eq!(prepared.encoded.paddings(), 0);
}

/// The execution trace agrees with the executed cycles for the schedule
/// the pipeline actually picked.
#[test]
fn trace_matches_pipeline_execution() {
    let a = Workload::Chebyshev4.generate(Scale::Small);
    let mut prepared = Pipeline::new().prepare(&a).unwrap();
    let mut y = vec![0.0f32; a.rows() as usize];
    let exec = prepared
        .execute(&vec![1.0; a.cols() as usize], &mut y)
        .unwrap();
    let map = spasm_format::SubmatrixMap::from_coo(&a);
    let summary = spasm_format::TilingSummary::analyze(
        &map,
        &prepared.selection.table,
        prepared.best.tile_size,
    )
    .unwrap();
    let trace = spasm_hw::ExecutionTrace::capture(&summary, &prepared.best.config);
    assert_eq!(trace.total_cycles(), exec.cycles);
    assert_eq!(exec.cycles, prepared.best.predicted_cycles);
}
