//! Local pattern analysis — workflow step ① (Algorithm 2).
//!
//! Tiles the matrix into `p × p` submatrices, represents each occupied
//! submatrix as a bitmask, and builds the `(bitmask, frequency)` histogram
//! that drives template selection and the Fig. 2 / Fig. 3 observations.

use std::collections::HashMap;

use spasm_sparse::Coo;

use crate::grid::{GridSize, Mask};

/// Accumulates the per-submatrix occupancy masks of one contiguous triplet
/// range. Entries arrive in `(row, col)` order; within a submatrix-row band
/// they interleave across submatrix columns, so accumulate per `(block row,
/// block col)` in a map keyed by packed coordinates.
fn block_map_range(
    matrix: &Coo,
    size: GridSize,
    lo: usize,
    hi: usize,
) -> HashMap<(u32, u32), Mask> {
    let p = size.edge();
    let rows = &matrix.row_indices()[lo..hi];
    let cols = &matrix.col_indices()[lo..hi];
    let mut blocks: HashMap<(u32, u32), Mask> = HashMap::new();
    for (&r, &c) in rows.iter().zip(cols) {
        let key = (r / p, c / p);
        *blocks.entry(key).or_insert(0) |= 1 << size.bit(r % p, c % p);
    }
    blocks
}

/// Triplet count below which sharding costs more than it saves.
#[cfg(feature = "parallel")]
const PARALLEL_ANALYZE_THRESHOLD: usize = 1 << 14;

#[cfg(feature = "parallel")]
fn block_map(matrix: &Coo, size: GridSize) -> HashMap<(u32, u32), Mask> {
    use rayon::prelude::*;

    let nnz = matrix.nnz();
    let threads = rayon::current_num_threads();
    if threads < 2 || nnz < PARALLEL_ANALYZE_THRESHOLD {
        return block_map_range(matrix, size, 0, nnz);
    }
    // Contiguous shards; a submatrix straddling a shard boundary shows up
    // in two partial maps and its mask bits are OR-merged below.
    let shard_len = nnz.div_ceil(threads);
    let shards: Vec<HashMap<(u32, u32), Mask>> = (0..threads)
        .map(|i| (i * shard_len, ((i + 1) * shard_len).min(nnz)))
        .filter(|&(lo, hi)| lo < hi)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(lo, hi)| block_map_range(matrix, size, lo, hi))
        .collect();
    let mut merged: HashMap<(u32, u32), Mask> = HashMap::new();
    for shard in shards {
        for (key, mask) in shard {
            *merged.entry(key).or_insert(0) |= mask;
        }
    }
    merged
}

#[cfg(not(feature = "parallel"))]
fn block_map(matrix: &Coo, size: GridSize) -> HashMap<(u32, u32), Mask> {
    block_map_range(matrix, size, 0, matrix.nnz())
}

/// Frequency histogram of the local patterns occurring in a matrix.
///
/// # Examples
///
/// ```
/// use spasm_patterns::{GridSize, PatternHistogram};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), spasm_sparse::SparseError> {
/// // Two occupied 4x4 submatrices: a diagonal and a lone cell.
/// let m = Coo::from_triplets(8, 8, vec![
///     (0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0),
///     (5, 6, 2.0),
/// ])?;
/// let h = PatternHistogram::analyze(&m, GridSize::S4);
/// assert_eq!(h.total_blocks(), 2);
/// assert_eq!(h.distinct_patterns(), 2);
/// assert!(h.top_n_coverage(1) >= 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHistogram {
    size: GridSize,
    freq: HashMap<Mask, u64>,
    total: u64,
}

impl PatternHistogram {
    /// Runs Algorithm 2 (`LP_ANALYSIS`): tiles `matrix` into `p × p`
    /// submatrices and histograms their occupancy bitmasks. Empty
    /// submatrices are skipped (the paper excludes the empty block).
    ///
    /// With the `parallel` feature (and more than one worker available)
    /// the triplet stream is sharded into contiguous ranges, each worker
    /// accumulates a private block map, and the shards are OR-merged by
    /// mask — bitwise OR is associative and commutative, so the histogram
    /// is identical to the serial one for every thread count.
    pub fn analyze(matrix: &Coo, size: GridSize) -> Self {
        let blocks = block_map(matrix, size);
        let mut freq: HashMap<Mask, u64> = HashMap::new();
        for mask in blocks.into_values() {
            *freq.entry(mask).or_insert(0) += 1;
        }
        let total = freq.values().sum();
        PatternHistogram { size, freq, total }
    }

    /// Builds a histogram directly from `(mask, frequency)` pairs — useful
    /// for tests and synthetic studies.
    ///
    /// # Panics
    ///
    /// Panics if a mask has bits outside the grid or is zero.
    pub fn from_counts(size: GridSize, counts: impl IntoIterator<Item = (Mask, u64)>) -> Self {
        let mut freq = HashMap::new();
        for (mask, f) in counts {
            assert_ne!(mask, 0, "empty block excluded from the histogram");
            assert_eq!(mask & !size.full_mask(), 0, "mask outside {size} grid");
            *freq.entry(mask).or_insert(0) += f;
        }
        let total = freq.values().sum();
        PatternHistogram { size, freq, total }
    }

    /// The grid size used for the analysis.
    pub fn size(&self) -> GridSize {
        self.size
    }

    /// Number of occupied submatrices observed.
    pub fn total_blocks(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* local patterns observed.
    pub fn distinct_patterns(&self) -> usize {
        self.freq.len()
    }

    /// Iterates `(mask, frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Mask, &u64)> {
        self.freq.iter()
    }

    /// Frequency of one pattern (0 if never observed).
    pub fn frequency(&self, mask: Mask) -> u64 {
        self.freq.get(&mask).copied().unwrap_or(0)
    }

    /// The `n` most frequent patterns, ordered by descending frequency
    /// (ties broken by ascending mask for determinism).
    pub fn top_n(&self, n: usize) -> Vec<(Mask, u64)> {
        let mut all: Vec<(Mask, u64)> = self.freq.iter().map(|(&m, &f)| (m, f)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Fraction of all observed blocks covered by the top `n` patterns —
    /// one point of the Fig. 3 CDF.
    pub fn top_n_coverage(&self, n: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.top_n(n).iter().map(|&(_, f)| f).sum();
        covered as f64 / self.total as f64
    }

    /// The full CDF series of Fig. 3: coverage after the 1st, 2nd, …
    /// most-frequent pattern.
    pub fn coverage_cdf(&self) -> Vec<f64> {
        let mut all: Vec<u64> = self.freq.values().copied().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        all.iter()
            .map(|f| {
                acc += f;
                if self.total == 0 {
                    0.0
                } else {
                    acc as f64 / self.total as f64
                }
            })
            .collect()
    }

    /// Smallest `n` such that the top-n patterns cover at least `fraction`
    /// of all blocks ("n could be varying when we let the top-n patterns
    /// count up a certain portion", Section II-B).
    pub fn n_for_coverage(&self, fraction: f64) -> usize {
        let cdf = self.coverage_cdf();
        cdf.iter()
            .position(|&c| c >= fraction)
            .map_or(cdf.len(), |i| i + 1)
    }

    /// Restricts the histogram to its top-n patterns (the
    /// `subset_pfreq` of Algorithm 3).
    pub fn top_n_histogram(&self, n: usize) -> PatternHistogram {
        PatternHistogram::from_counts(self.size, self.top_n(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_sparse::Coo;

    /// 8x8 matrix: a full 4x4 block at (0,0), a main diagonal in the (4..8,
    /// 4..8) submatrix, and a single entry in the (0..4, 4..8) submatrix.
    fn sample() -> Coo {
        let mut t = Vec::new();
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, 1.0));
            }
        }
        for i in 0..4u32 {
            t.push((4 + i, 4 + i, 2.0));
        }
        t.push((0, 7, 3.0));
        Coo::from_triplets(8, 8, t).unwrap()
    }

    #[test]
    fn histogram_counts_blocks() {
        let h = PatternHistogram::analyze(&sample(), GridSize::S4);
        assert_eq!(h.total_blocks(), 3);
        assert_eq!(h.distinct_patterns(), 3);
        assert_eq!(h.frequency(0xFFFF), 1); // dense block
        let diag = GridSize::S4.mask_of([(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(h.frequency(diag), 1);
        let lone = GridSize::S4.mask_of([(0, 3)]);
        assert_eq!(h.frequency(lone), 1);
    }

    #[test]
    fn top_n_and_cdf() {
        let h =
            PatternHistogram::from_counts(GridSize::S4, [(0xFFFF, 50), (0x000F, 30), (0x0001, 20)]);
        assert_eq!(h.top_n(2), vec![(0xFFFF, 50), (0x000F, 30)]);
        assert!((h.top_n_coverage(1) - 0.5).abs() < 1e-12);
        assert!((h.top_n_coverage(2) - 0.8).abs() < 1e-12);
        let cdf = h.coverage_cdf();
        assert_eq!(cdf.len(), 3);
        assert!((cdf[2] - 1.0).abs() < 1e-12);
        assert_eq!(h.n_for_coverage(0.75), 2);
        assert_eq!(h.n_for_coverage(1.0), 3);
    }

    #[test]
    fn top_n_histogram_restricts() {
        let h =
            PatternHistogram::from_counts(GridSize::S4, [(0xFFFF, 50), (0x000F, 30), (0x0001, 20)]);
        let top = h.top_n_histogram(2);
        assert_eq!(top.total_blocks(), 80);
        assert_eq!(top.distinct_patterns(), 2);
        assert_eq!(top.frequency(0x0001), 0);
    }

    #[test]
    fn different_grid_sizes_see_different_patterns() {
        let h2 = PatternHistogram::analyze(&sample(), GridSize::S2);
        // The dense 4x4 block yields four full 2x2 blocks.
        assert_eq!(h2.frequency(GridSize::S2.full_mask()), 4);
    }

    #[test]
    fn empty_matrix_has_empty_histogram() {
        let h = PatternHistogram::analyze(&Coo::new(16, 16), GridSize::S4);
        assert_eq!(h.total_blocks(), 0);
        assert_eq!(h.coverage_cdf().len(), 0);
        assert_eq!(h.top_n_coverage(5), 0.0);
    }

    #[test]
    fn ties_break_deterministically() {
        let h = PatternHistogram::from_counts(GridSize::S4, [(0x2, 5), (0x1, 5)]);
        assert_eq!(h.top_n(2), vec![(0x1, 5), (0x2, 5)]);
    }
}
