//! Per-plan circuit breaker: quarantine plans whose integrity keeps
//! failing, serve them from the golden CSR, and probe for recovery.
//!
//! PR 3 made a *single* execution fault-tolerant: the verify-and-heal
//! ladder detects corruption and falls back to the golden CSR — but at
//! full ladder cost, on every request, forever. A plan with a persistent
//! fault (a stuck lane, a corrupted stream) would burn
//! verify + quarantine + re-execute + fallback work on every batch it
//! touches. The breaker moves that policy decision up into the serving
//! layer (the SMASH framing: the software-managed layer owns policy, the
//! fast path stays simple): the catalog tracks each plan's recent
//! execution outcomes in a sliding window; too many fallbacks trip the
//! plan into [`BreakerState::Quarantined`], where requests are served
//! *directly* from the golden CSR — graceful degradation with zero
//! ladder cost. After a seeded cooldown on the virtual clock the plan
//! goes [`BreakerState::HalfOpen`]: exactly one batch per round probes
//! the accelerator path; a clean probe re-admits the plan, a dirty one
//! re-trips it.
//!
//! Everything is deterministic: routing decisions are taken serially in
//! flush order under the server's issue step, outcomes are recorded in
//! flush order after the round's barrier, and the cooldown jitter is a
//! pure function of the configured seed and the trip count — so the
//! whole Healthy → Quarantined → HalfOpen → Healthy history of a trace
//! replays identically for any worker count.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::clock::Tick;

/// Configuration for the per-plan circuit breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Sliding window of recent per-vector execution outcomes tracked per
    /// plan (clamped to at least 1).
    pub window: u32,
    /// Trip into quarantine once this many outcomes in the window were
    /// failures (needed the golden fallback or errored). Clamped to at
    /// least 1; values above `window` can never trip.
    pub trip_failures: u32,
    /// Ticks a tripped plan stays quarantined before a half-open probe is
    /// allowed.
    pub cooldown: Tick,
    /// Upper bound on the deterministic per-trip jitter added to
    /// `cooldown` (0 disables jitter). Jitter is a pure function of
    /// `seed` and the plan's trip count, so re-probes of a fleet of
    /// plans tripped at the same tick spread out — deterministically.
    pub probe_jitter: Tick,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_failures: 8,
            cooldown: 10_000,
            probe_jitter: 0,
            seed: 0,
        }
    }
}

/// Where the breaker routes a plan's next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecRoute {
    /// Healthy: execute on the accelerator plan (the normal path).
    Plan,
    /// Quarantined: serve directly from the golden CSR — no ladder cost.
    Golden,
    /// Half-open: execute on the plan as a recovery probe; the outcome
    /// decides re-admission.
    Probe,
}

/// The breaker's position in the Healthy → Quarantined → HalfOpen cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving on the accelerator path.
    Healthy,
    /// Serving from the golden CSR until the cooldown expires.
    Quarantined {
        /// The tick at which a half-open probe becomes allowed.
        until: Tick,
    },
    /// Cooldown expired; one probe is (or is about to be) in flight.
    HalfOpen,
}

/// A state-machine transition observed while recording outcomes, for the
/// server's overload counters and the load generator's campaign report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Healthy (or a failed probe) tripped into quarantine.
    Tripped {
        /// When the quarantine lifts.
        until: Tick,
    },
    /// A clean probe re-admitted the plan.
    Recovered,
}

/// Per-plan breaker bookkeeping: the sliding outcome window plus the
/// state machine. Owned by the catalog entry, driven by the server.
#[derive(Debug)]
pub struct PlanHealth {
    state: BreakerState,
    /// Recent per-vector outcomes on the accelerator path
    /// (`true` = failure). Probe and golden outcomes never enter the
    /// window: a probe decides the transition by itself, and golden
    /// serves say nothing about the accelerator path.
    outcomes: VecDeque<bool>,
    failures: u32,
    trips: u64,
    probe_inflight: bool,
}

impl Default for PlanHealth {
    fn default() -> Self {
        PlanHealth {
            state: BreakerState::Healthy,
            outcomes: VecDeque::new(),
            failures: 0,
            trips: 0,
            probe_inflight: false,
        }
    }
}

impl PlanHealth {
    /// The current state (quarantine expiry is *not* applied here; the
    /// transition to half-open happens on the next [`PlanHealth::route`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times this plan has tripped into quarantine.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Routes the next batch at `now`. Must be called serially in flush
    /// order (the server's issue step) — the half-open bookkeeping keyed
    /// off this call is what keeps probe selection deterministic.
    pub fn route(&mut self, now: Tick, _config: &BreakerConfig) -> ExecRoute {
        match self.state {
            BreakerState::Healthy => ExecRoute::Plan,
            BreakerState::Quarantined { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                self.probe_inflight = true;
                ExecRoute::Probe
            }
            BreakerState::Quarantined { .. } => ExecRoute::Golden,
            BreakerState::HalfOpen if !self.probe_inflight => {
                self.probe_inflight = true;
                ExecRoute::Probe
            }
            // A probe is already in flight this round; don't gamble more
            // traffic on an unproven plan.
            BreakerState::HalfOpen => ExecRoute::Golden,
        }
    }

    /// Records a finished batch's per-vector outcomes (`true` = the
    /// vector needed the golden fallback or errored) for the route the
    /// batch was issued under. Must be called in flush order after the
    /// round completes. Returns the transition this recording caused, if
    /// any.
    pub fn record(
        &mut self,
        route: ExecRoute,
        outcomes: &[bool],
        now: Tick,
        config: &BreakerConfig,
    ) -> Option<BreakerEvent> {
        match route {
            ExecRoute::Golden => None,
            ExecRoute::Probe => {
                self.probe_inflight = false;
                if outcomes.iter().any(|&failed| failed) {
                    Some(self.trip(now, config))
                } else {
                    self.state = BreakerState::Healthy;
                    self.outcomes.clear();
                    self.failures = 0;
                    Some(BreakerEvent::Recovered)
                }
            }
            ExecRoute::Plan => {
                let window = config.window.max(1) as usize;
                for &failed in outcomes {
                    if self.outcomes.len() == window && self.outcomes.pop_front() == Some(true) {
                        self.failures -= 1;
                    }
                    self.outcomes.push_back(failed);
                    if failed {
                        self.failures += 1;
                    }
                    if self.failures >= config.trip_failures.max(1) {
                        return Some(self.trip(now, config));
                    }
                }
                None
            }
        }
    }

    fn trip(&mut self, now: Tick, config: &BreakerConfig) -> BreakerEvent {
        self.trips += 1;
        let jitter = if config.probe_jitter == 0 {
            0
        } else {
            SmallRng::seed_from_u64(config.seed ^ self.trips.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .gen_range(0..=config.probe_jitter)
        };
        let until = now.saturating_add(config.cooldown).saturating_add(jitter);
        self.state = BreakerState::Quarantined { until };
        self.outcomes.clear();
        self.failures = 0;
        self.probe_inflight = false;
        BreakerEvent::Tripped { until }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            trip_failures: 2,
            cooldown: 100,
            probe_jitter: 0,
            seed: 7,
        }
    }

    #[test]
    fn trips_after_threshold_failures_in_window() {
        let c = cfg();
        let mut h = PlanHealth::default();
        assert_eq!(h.route(0, &c), ExecRoute::Plan);
        assert_eq!(h.record(ExecRoute::Plan, &[false, true], 0, &c), None);
        let ev = h.record(ExecRoute::Plan, &[true], 5, &c);
        assert_eq!(ev, Some(BreakerEvent::Tripped { until: 105 }));
        assert_eq!(h.state(), BreakerState::Quarantined { until: 105 });
        assert_eq!(h.trips(), 1);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let c = cfg();
        let mut h = PlanHealth::default();
        // One failure, then a full window of successes: the failure ages
        // out and a later lone failure does not trip.
        h.record(ExecRoute::Plan, &[true, false, false, false], 0, &c);
        assert_eq!(h.record(ExecRoute::Plan, &[false, true], 1, &c), None);
        assert_eq!(h.state(), BreakerState::Healthy);
    }

    #[test]
    fn quarantine_serves_golden_until_cooldown_then_probes() {
        let c = cfg();
        let mut h = PlanHealth::default();
        h.record(ExecRoute::Plan, &[true, true], 10, &c);
        assert_eq!(h.state(), BreakerState::Quarantined { until: 110 });
        assert_eq!(h.route(50, &c), ExecRoute::Golden);
        assert_eq!(h.route(109, &c), ExecRoute::Golden);
        // Cooldown expiry: first route is the probe, siblings in the same
        // round stay on golden.
        assert_eq!(h.route(110, &c), ExecRoute::Probe);
        assert_eq!(h.route(110, &c), ExecRoute::Golden);
        // Failed probe re-trips with a fresh cooldown.
        let ev = h.record(ExecRoute::Probe, &[false, true], 110, &c);
        assert_eq!(ev, Some(BreakerEvent::Tripped { until: 210 }));
        assert_eq!(h.route(209, &c), ExecRoute::Golden);
        // Clean probe re-admits.
        assert_eq!(h.route(210, &c), ExecRoute::Probe);
        assert_eq!(
            h.record(ExecRoute::Probe, &[false], 210, &c),
            Some(BreakerEvent::Recovered)
        );
        assert_eq!(h.state(), BreakerState::Healthy);
        assert_eq!(h.route(211, &c), ExecRoute::Plan);
        assert_eq!(h.trips(), 2);
    }

    #[test]
    fn golden_outcomes_never_touch_the_window() {
        let c = cfg();
        let mut h = PlanHealth::default();
        assert_eq!(
            h.record(ExecRoute::Golden, &[true, true, true], 0, &c),
            None
        );
        assert_eq!(h.state(), BreakerState::Healthy);
    }

    #[test]
    fn probe_jitter_is_seeded_and_bounded() {
        let c = BreakerConfig {
            probe_jitter: 50,
            ..cfg()
        };
        let until_of = |seed: u64| {
            let c = BreakerConfig { seed, ..c };
            let mut h = PlanHealth::default();
            match h.record(ExecRoute::Plan, &[true, true], 0, &c) {
                Some(BreakerEvent::Tripped { until }) => until,
                other => panic!("expected trip, got {other:?}"),
            }
        };
        for seed in 0..8 {
            let u = until_of(seed);
            assert!((100..=150).contains(&u), "seed {seed}: until {u}");
            assert_eq!(u, until_of(seed), "jitter must be deterministic");
        }
        assert!(
            (0..8)
                .map(until_of)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1,
            "jitter should actually vary across seeds"
        );
    }
}
