use crate::{Bsr, Coo, Csc, Csr, Dia, Ell, SparseError, Value};

/// Sparse matrix-vector multiplication, `y = A·x + y` (Equation 1 of the
/// paper).
///
/// Every storage format implements this trait; the CSR implementation is the
/// reference against which the SPASM encoder, decoder and hardware simulator
/// are validated.
pub trait SpMv {
    /// Accumulates `A·x` into `y`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len()` differs from
    /// the matrix column count or `y.len()` from the row count.
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError>;

    /// Convenience wrapper computing `A·x` into a fresh zero vector.
    ///
    /// # Errors
    ///
    /// Propagates the dimension check from [`SpMv::spmv`].
    fn spmv_alloc(&self, x: &[Value]) -> Result<Vec<Value>, SparseError>
    where
        Self: Shaped,
    {
        let mut y = vec![0.0; self.shape_rows() as usize];
        self.spmv(x, &mut y)?;
        Ok(y)
    }
}

/// Minimal shape accessor so [`SpMv::spmv_alloc`] can size its output.
pub trait Shaped {
    /// Number of rows.
    fn shape_rows(&self) -> u32;
    /// Number of columns.
    fn shape_cols(&self) -> u32;
}

fn check_dims(rows: u32, cols: u32, x: &[Value], y: &[Value]) -> Result<(), SparseError> {
    if x.len() != cols as usize {
        return Err(SparseError::DimensionMismatch {
            expected: cols as usize,
            actual: x.len(),
            operand: "x",
        });
    }
    if y.len() != rows as usize {
        return Err(SparseError::DimensionMismatch {
            expected: rows as usize,
            actual: y.len(),
            operand: "y",
        });
    }
    Ok(())
}

macro_rules! impl_shaped {
    ($($ty:ty),*) => {$(
        impl Shaped for $ty {
            fn shape_rows(&self) -> u32 { self.rows() }
            fn shape_cols(&self) -> u32 { self.cols() }
        }
    )*};
}
impl_shaped!(Coo, Csr, Csc, Bsr, Dia, Ell);

impl SpMv for Coo {
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        for (r, c, v) in self.iter() {
            y[r as usize] += v * x[c as usize];
        }
        Ok(())
    }
}

/// The scalar CSR kernel over one contiguous row range: accumulates rows
/// `[first, first + out.len())` of `A·x` into `out`. Both the serial and the
/// parallel drivers funnel through here, so a row's accumulation order — and
/// therefore its rounding — is identical in both.
fn csr_row_range(csr: &Csr, x: &[Value], out: &mut [Value], first: usize) {
    let ptr = csr.row_ptr();
    let cols = csr.col_indices();
    let vals = csr.values();
    for (k, slot) in out.iter_mut().enumerate() {
        let r = first + k;
        let mut acc = 0.0;
        for i in ptr[r]..ptr[r + 1] {
            acc += vals[i] * x[cols[i] as usize];
        }
        *slot += acc;
    }
}

impl SpMv for Csr {
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        csr_row_range(self, x, y, 0);
        Ok(())
    }
}

impl Csr {
    /// `y += A·x` with the rows partitioned into contiguous,
    /// **nnz-balanced** chunks that run on separate threads: chunk
    /// boundaries are found by binary search on `row_ptr` so each worker
    /// owns roughly `nnz / threads` non-zeros, which keeps power-law
    /// matrices (a few dense rows, many near-empty ones) from serialising
    /// behind one overloaded worker. Each chunk owns a disjoint `y` range,
    /// so no locks are needed, and each row is accumulated by the same
    /// scalar kernel as [`SpMv::spmv`] — the result is bit-for-bit
    /// identical to the serial product for any thread count.
    ///
    /// Without the `parallel` feature (or with a single worker) this is the
    /// serial kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] exactly as [`SpMv::spmv`]
    /// does.
    pub fn spmv_parallel(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        self.spmv_parallel_inner(x, y);
        Ok(())
    }

    #[cfg(feature = "parallel")]
    fn spmv_parallel_inner(&self, x: &[Value], y: &mut [Value]) {
        let rows = y.len();
        let threads = rayon::current_num_threads();
        if threads < 2 || rows < 2 {
            csr_row_range(self, x, y, 0);
            return;
        }
        // Row boundaries where the cumulative non-zero count crosses each
        // worker's share; strictly increasing, so every chunk is non-empty
        // and runs of empty rows attach to one worker.
        let ptr = self.row_ptr();
        let nnz = ptr[rows];
        let parts = threads.min(rows);
        let mut bounds = Vec::with_capacity(parts + 1);
        bounds.push(0usize);
        for t in 1..parts {
            let target = nnz * t / parts;
            let b = ptr.partition_point(|&c| c < target).min(rows);
            if b > *bounds.last().expect("seeded with 0") && b < rows {
                bounds.push(b);
            }
        }
        bounds.push(rows);
        if bounds.len() < 3 {
            csr_row_range(self, x, y, 0);
            return;
        }
        let mut chunks: Vec<(usize, &mut [Value])> = Vec::with_capacity(bounds.len() - 1);
        let mut rest = y;
        for w in bounds.windows(2) {
            let (chunk, tail) = rest.split_at_mut(w[1] - w[0]);
            chunks.push((w[0], chunk));
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (first, out) in chunks {
                scope.spawn(move || csr_row_range(self, x, out, first));
            }
        });
    }

    #[cfg(not(feature = "parallel"))]
    fn spmv_parallel_inner(&self, x: &[Value], y: &mut [Value]) {
        csr_row_range(self, x, y, 0);
    }
}

impl SpMv for Csc {
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        for c in 0..self.cols() {
            let xc = x[c as usize];
            for (r, v) in self.col(c) {
                y[r as usize] += v * xc;
            }
        }
        Ok(())
    }
}

impl SpMv for Bsr {
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        self.spmv_into(x, y);
        Ok(())
    }
}

impl SpMv for Dia {
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        self.spmv_into(x, y);
        Ok(())
    }
}

impl SpMv for Ell {
    fn spmv(&self, x: &[Value], y: &mut [Value]) -> Result<(), SparseError> {
        check_dims(self.rows(), self.cols(), x, y)?;
        self.spmv_into(x, y);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;

    fn sample() -> Coo {
        Coo::from_triplets(
            4,
            5,
            vec![
                (0, 0, 1.5),
                (0, 4, -2.0),
                (1, 2, 3.0),
                (2, 1, 0.5),
                (2, 3, 2.5),
                (3, 0, -1.0),
                (3, 4, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_formats_agree_with_dense() {
        let coo = sample();
        let x: Vec<f32> = (0..5).map(|i| (i as f32) * 0.7 - 1.0).collect();
        let mut want = vec![0.25; 4];
        Dense::from(&coo).spmv_into(&x, &mut want);

        macro_rules! check {
            ($m:expr) => {{
                let mut y = vec![0.25; 4];
                $m.spmv(&x, &mut y).unwrap();
                for (a, b) in y.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-5, "{a} vs {b}");
                }
            }};
        }
        check!(coo);
        check!(Csr::from(&coo));
        check!(Csc::from(&coo));
        check!(Bsr::from_coo(&coo, 2).unwrap());
        check!(Bsr::from_coo(&coo, 3).unwrap());
        check!(Dia::from_coo(&coo));
        check!(Ell::from_coo(&coo));
    }

    #[test]
    fn dimension_checks() {
        let coo = sample();
        let mut y = vec![0.0; 4];
        assert!(matches!(
            coo.spmv(&[0.0; 3], &mut y),
            Err(SparseError::DimensionMismatch { operand: "x", .. })
        ));
        let mut y_bad = vec![0.0; 2];
        assert!(matches!(
            coo.spmv(&[0.0; 5], &mut y_bad),
            Err(SparseError::DimensionMismatch { operand: "y", .. })
        ));
    }

    #[test]
    fn spmv_accumulates_rather_than_overwrites() {
        let coo = Coo::from_triplets(1, 1, vec![(0, 0, 2.0)]).unwrap();
        let mut y = vec![10.0];
        coo.spmv(&[3.0], &mut y).unwrap();
        assert_eq!(y, vec![16.0]);
    }

    #[test]
    fn spmv_alloc() {
        let coo = sample();
        let y = Csr::from(&coo).spmv_alloc(&[1.0; 5]).unwrap();
        assert_eq!(y.len(), 4);
        assert!((y[0] - (-0.5)).abs() < 1e-6);
    }
}
