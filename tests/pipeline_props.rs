//! Property tests over the whole pipeline: correctness and schedule
//! optimality for arbitrary matrices.

use proptest::prelude::*;
use spasm::{Pipeline, PipelineError, PipelineOptions};
use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;
use spasm_sparse::{Coo, Csr, SpMv};

fn arb_matrix() -> impl Strategy<Value = Coo> {
    (16u32..128, 16u32..128).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, (1i32..32).prop_map(|q| q as f32 * 0.25));
        proptest::collection::vec(entry, 1..256)
            .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: prepare + execute equals CSR SpMV.
    #[test]
    fn pipeline_is_correct(m in arb_matrix()) {
        let mut prepared = Pipeline::new().prepare(&m).unwrap();
        let x: Vec<f32> = (0..m.cols()).map(|i| ((i % 11) as f32) * 0.5 - 2.0).collect();
        let mut want = vec![0.0f32; m.rows() as usize];
        Csr::from(&m).spmv(&x, &mut want).unwrap();
        let mut got = vec![0.0f32; m.rows() as usize];
        prepared.execute(&x, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 2e-3 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    /// The encoded stream is lossless and its padding accounting balances.
    #[test]
    fn pipeline_encoding_invariants(m in arb_matrix()) {
        let prepared = Pipeline::new().prepare(&m).unwrap();
        prop_assert_eq!(prepared.encoded.to_coo(), m.clone());
        prop_assert_eq!(
            4 * prepared.encoded.n_instances() as u64,
            m.nnz() as u64 + prepared.encoded.paddings()
        );
    }

    /// The explored winner is never beaten by any other explored point.
    #[test]
    fn schedule_winner_is_optimal(m in arb_matrix()) {
        let prepared = Pipeline::new().prepare(&m).unwrap();
        let winner = prepared.best.config.cycles_to_seconds(prepared.best.predicted_cycles);
        for c in &prepared.explored {
            prop_assert!(winner <= c.predicted_seconds + 1e-15);
        }
    }

    /// The dynamic portfolio minimises scored paddings across the
    /// candidates (Algorithm 3's contract), and a pinned single-candidate
    /// pipeline respects its pin.
    #[test]
    fn dynamic_selection_minimises_scored_paddings(m in arb_matrix()) {
        let full = Pipeline::new().prepare(&m).unwrap();
        let min = full
            .selection
            .candidate_paddings
            .iter()
            .flatten()
            .min()
            .copied()
            .unwrap();
        prop_assert_eq!(full.selection.paddings, min);

        let fixed = Pipeline::with_options(
            PipelineOptions::default()
                .fixed_portfolio(TemplateSet::table_v_set(0))
                .fixed_schedule(1024, HwConfig::spasm_4_1()),
        )
        .prepare(&m)
        .unwrap();
        prop_assert_eq!(fixed.selection.set.name(), "set-0");
        prop_assert_eq!(fixed.best.tile_size, 1024);
    }

    /// Batched execution over arbitrary batch shapes: any well-formed
    /// batch (including empty and singleton) equals looped execution bit
    /// for bit; malformed shapes error without touching any output.
    #[test]
    fn batched_execution_handles_arbitrary_shapes(
        m in arb_matrix(),
        batch in 0usize..6,
        defect in 0usize..4,
    ) {
        let mut prepared = Pipeline::new().prepare(&m).unwrap();
        let (rows, cols) = (m.rows() as usize, m.cols() as usize);
        let xs: Vec<Vec<f32>> = (0..batch)
            .map(|j| (0..cols).map(|i| (((i + j) % 7) as f32) * 0.5 - 1.5).collect())
            .collect();

        // Well-formed batch: bit-identical to the looped single path.
        let mut want = vec![vec![0.25f32; rows]; batch];
        for (xj, yj) in xs.iter().zip(want.iter_mut()) {
            prepared.execute_into(xj, yj).unwrap();
        }
        let mut got = vec![vec![0.25f32; rows]; batch];
        prepared.execute_batch_into(&xs, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            let gb: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb);
        }
        prop_assert_eq!(prepared.batch_health().len(), batch);

        // Malformed shapes: an error, never a panic, and never a partial
        // write — every output still holds its sentinel afterwards.
        let mut bad_xs = xs.clone();
        let mut bad_ys = vec![vec![0.125f32; rows]; batch];
        // `(operand, vector index named by the error)`: per-vector shape
        // defects carry the offending index, batch-length defects do not.
        let expected_defect = match defect {
            // One x too short.
            0 if batch > 0 => {
                bad_xs[batch - 1] = vec![0.0; cols.saturating_sub(1)];
                Some(("x", Some(batch - 1)))
            }
            // One y too long.
            1 if batch > 0 => {
                bad_ys[0] = vec![0.125f32; rows + 1];
                Some(("y", Some(0)))
            }
            // ys shorter than xs.
            2 if batch > 0 => {
                bad_ys.pop();
                Some(("batch", None))
            }
            // ys longer than xs.
            3 => {
                bad_ys.push(vec![0.125f32; rows]);
                Some(("batch", None))
            }
            _ => None,
        };
        if let Some((operand, vector)) = expected_defect {
            let err = prepared.execute_batch_into(&bad_xs, &mut bad_ys);
            match (err, vector) {
                (Err(PipelineError::DimensionMismatch { operand: o, .. }), None) => {
                    prop_assert_eq!(o, operand);
                }
                (
                    Err(PipelineError::BatchDimensionMismatch {
                        vector: v,
                        operand: o,
                        ..
                    }),
                    Some(want),
                ) => {
                    prop_assert_eq!(o, operand);
                    prop_assert_eq!(v, want);
                }
                (other, _) => prop_assert!(false, "expected a shape error, got {:?}", other),
            }
            prop_assert!(
                bad_ys.iter().flatten().all(|&v| v == 0.125),
                "a malformed batch wrote partial results"
            );
        }
    }
}
