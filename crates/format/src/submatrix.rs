//! The 4×4 submatrix view of a matrix — the shared intermediate between
//! pattern analysis, encoding, and the tile-size sweep.
//!
//! Because tile sizes are multiples of 4, tile boundaries never split a
//! 4×4 submatrix; the submatrix map can therefore be computed once per
//! matrix and re-tiled for free during Algorithm 4's exploration.

use std::collections::HashMap;

use spasm_patterns::{GridSize, PatternHistogram};
use spasm_sparse::Coo;

use crate::encoding::PATTERN_EDGE;

/// One occupied 4×4 submatrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SubBlock {
    /// Global submatrix row (`matrix_row / 4`).
    pub sub_r: u32,
    /// Global submatrix column (`matrix_col / 4`).
    pub sub_c: u32,
    /// Occupancy bitmask (bit `r·4 + c`).
    pub mask: u16,
    /// Dense 16-value payload, row-major; unoccupied cells hold 0.0.
    pub values: [f32; 16],
}

/// All occupied 4×4 submatrices of a matrix, sorted by
/// `(sub_r, sub_c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmatrixMap {
    rows: u32,
    cols: u32,
    nnz: usize,
    subs: Vec<SubBlock>,
}

impl SubmatrixMap {
    /// Builds the map from a COO matrix.
    pub fn from_coo(matrix: &Coo) -> Self {
        let p = PATTERN_EDGE;
        let mut blocks: HashMap<(u32, u32), SubBlock> = HashMap::new();
        for (r, c, v) in matrix.iter() {
            let key = (r / p, c / p);
            let blk = blocks.entry(key).or_insert_with(|| SubBlock {
                sub_r: key.0,
                sub_c: key.1,
                mask: 0,
                values: [0.0; 16],
            });
            let bit = (r % p) * p + (c % p);
            blk.mask |= 1 << bit;
            blk.values[bit as usize] += v;
        }
        let mut subs: Vec<SubBlock> = blocks.into_values().collect();
        subs.sort_unstable_by_key(|b| (b.sub_r, b.sub_c));
        SubmatrixMap {
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
            subs,
        }
    }

    /// Original matrix row count.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Original matrix column count.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Original non-zero count.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The occupied submatrices in `(sub_r, sub_c)` order.
    pub fn blocks(&self) -> &[SubBlock] {
        &self.subs
    }

    /// The local-pattern histogram of this matrix (Algorithm 2 applied to
    /// the cached masks — same result as
    /// [`PatternHistogram::analyze`] at 4×4).
    pub fn histogram(&self) -> PatternHistogram {
        let mut counts: HashMap<u16, u64> = HashMap::new();
        for b in &self.subs {
            *counts.entry(b.mask).or_insert(0) += 1;
        }
        PatternHistogram::from_counts(GridSize::S4, counts)
    }

    /// Reconstructs the COO matrix (explicit zeros are dropped — the SPASM
    /// value stream cannot distinguish a stored 0.0 from padding).
    pub fn to_coo(&self) -> Coo {
        let p = PATTERN_EDGE;
        let mut triplets = Vec::with_capacity(self.nnz);
        for b in &self.subs {
            for bit in 0..16u32 {
                if b.mask & (1 << bit) != 0 {
                    let v = b.values[bit as usize];
                    if v != 0.0 {
                        triplets.push((b.sub_r * p + bit / p, b.sub_c * p + bit % p, v));
                    }
                }
            }
        }
        Coo::from_triplets(self.rows, self.cols, triplets)
            .expect("submatrix cells are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_patterns::GridSize;

    fn sample() -> Coo {
        Coo::from_triplets(
            10,
            10,
            vec![(0, 0, 1.0), (3, 3, 2.0), (0, 5, 3.0), (9, 9, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn blocks_are_sorted_and_masked() {
        let map = SubmatrixMap::from_coo(&sample());
        let coords: Vec<_> = map.blocks().iter().map(|b| (b.sub_r, b.sub_c)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (2, 2)]);
        let b00 = &map.blocks()[0];
        assert_eq!(b00.mask, (1 << 0) | (1 << 15));
        assert_eq!(b00.values[0], 1.0);
        assert_eq!(b00.values[15], 2.0);
    }

    #[test]
    fn histogram_matches_analysis() {
        let coo = sample();
        let map = SubmatrixMap::from_coo(&coo);
        let direct = PatternHistogram::analyze(&coo, GridSize::S4);
        let cached = map.histogram();
        assert_eq!(cached.total_blocks(), direct.total_blocks());
        for (mask, freq) in direct.iter() {
            assert_eq!(cached.frequency(*mask), *freq);
        }
    }

    #[test]
    fn round_trip() {
        let coo = sample();
        assert_eq!(SubmatrixMap::from_coo(&coo).to_coo(), coo);
    }

    #[test]
    fn duplicate_cells_summed() {
        // from_triplets already sums, but SubmatrixMap must preserve them.
        let coo = Coo::from_triplets(4, 4, vec![(1, 1, 2.0), (1, 1, 3.0)]).unwrap();
        let map = SubmatrixMap::from_coo(&coo);
        assert_eq!(map.blocks()[0].values[5], 5.0);
    }
}
