//! PageRank on a synthetic web-like graph, with the rank-propagation SpMV
//! running on the simulated SPASM accelerator.
//!
//! Graph matrices are SPASM's hardest class (scattered local patterns, cf.
//! mycielskian14 in Table II); this example shows the framework still
//! executes them correctly and reports the achieved efficiency.
//!
//! ```text
//! cargo run --release -p spasm --example pagerank
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spasm::Pipeline;
use spasm_sparse::Coo;

/// Builds a random directed graph with preferential attachment so the
/// in-degree distribution is skewed like a real web graph, and returns its
/// column-stochastic transition matrix.
fn transition_matrix(n: u32, edges_per_node: usize, seed: u64) -> Coo {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut targets: Vec<u32> = Vec::new();
    let mut out_edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        for _ in 0..edges_per_node {
            // Preferential attachment: half the time copy an existing
            // target, otherwise uniform.
            let t = if !targets.is_empty() && rng.gen_bool(0.5) {
                targets[rng.gen_range(0..targets.len())]
            } else {
                rng.gen_range(0..n)
            };
            if t != v {
                out_edges.push((v, t));
                targets.push(t);
            }
        }
    }
    // Column-stochastic: A[t][v] = 1/outdeg(v).
    let mut outdeg = vec![0usize; n as usize];
    for &(v, _) in &out_edges {
        outdeg[v as usize] += 1;
    }
    let triplets: Vec<(u32, u32, f32)> = out_edges
        .into_iter()
        .map(|(v, t)| (t, v, 1.0 / outdeg[v as usize] as f32))
        .collect();
    Coo::from_triplets(n, n, triplets).expect("edges in bounds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096u32;
    let a = transition_matrix(n, 8, 42);
    println!("graph: {} nodes, {} edges", n, a.nnz());

    let prepared = Pipeline::new().prepare(&a)?;
    println!(
        "selected {} @ tile {}; padding rate {:.1}%",
        prepared.best.config.name,
        prepared.best.tile_size,
        prepared.encoded.padding_rate() * 100.0
    );

    let damping = 0.85f32;
    let acc = prepared.accelerator();
    let mut rank = vec![1.0f32 / n as f32; n as usize];
    let mut simulated = 0.0f64;
    let mut iters = 0;
    loop {
        let mut contrib = vec![0.0f32; n as usize];
        let exec = acc.run(&prepared.encoded, &rank, &mut contrib)?;
        simulated += exec.seconds;

        // Dangling mass: rank that flowed into nodes without out-edges
        // redistributes uniformly.
        let sum: f32 = contrib.iter().sum();
        let leaked = (1.0 - sum).max(0.0);
        let base = (1.0 - damping) / n as f32 + damping * leaked / n as f32;
        let mut delta = 0.0f32;
        for i in 0..n as usize {
            let new = base + damping * contrib[i];
            delta += (new - rank[i]).abs();
            rank[i] = new;
        }
        iters += 1;
        if delta < 1e-6 * n as f32 || iters >= 100 {
            break;
        }
    }

    // Cross-check the final propagation on the host with the
    // row-partitioned parallel CSR kernel (serial fallback without the
    // `parallel` feature).
    let csr = spasm_sparse::Csr::from(&a);
    let mut host = vec![0.0f32; n as usize];
    csr.spmv_parallel(&rank, &mut host)?;
    let mut accel = vec![0.0f32; n as usize];
    acc.run(&prepared.encoded, &rank, &mut accel)?;
    let max_err = host
        .iter()
        .zip(&accel)
        .map(|(h, s)| (h - s).abs())
        .fold(0.0f32, f32::max);
    println!("max |host - accelerator| on final ranks: {max_err:.2e}");

    let mut top: Vec<(usize, f32)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("converged in {iters} iterations; top-5 nodes:");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:>5}: {score:.6}");
    }
    let total: f32 = rank.iter().sum();
    println!("rank mass: {total:.6} (should be ~1)");
    println!(
        "simulated accelerator time: {:.3} ms over {iters} SpMVs",
        simulated * 1e3
    );
    Ok(())
}
