use crate::{Coo, Index, SparseError, Value};

/// ELLPACK (ELL) storage.
///
/// Every row is padded to the length of the longest row; column indices and
/// values are stored as dense `rows × width` arrays (row-major here).
/// Great for matrices with uniform row lengths (banded/diagonal global
/// composition), terrible when one row is much denser than the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Ell {
    rows: Index,
    cols: Index,
    width: usize,
    /// `rows × width` column indices; padding slots hold the sentinel
    /// `u32::MAX` and a 0.0 value.
    col_idx: Vec<Index>,
    values: Vec<Value>,
    nnz: usize,
}

/// Sentinel column index marking an ELL padding slot.
pub const ELL_PAD: Index = Index::MAX;

impl Ell {
    /// Converts a COO matrix to ELL storage.
    pub fn from_coo(coo: &Coo) -> Self {
        let rows = coo.rows() as usize;
        let mut lengths = vec![0usize; rows];
        for &r in coo.row_indices() {
            lengths[r as usize] += 1;
        }
        let width = lengths.iter().copied().max().unwrap_or(0);
        let mut col_idx = vec![ELL_PAD; rows * width];
        let mut values = vec![0.0; rows * width];
        let mut cursor = vec![0usize; rows];
        for (r, c, v) in coo.iter() {
            let slot = r as usize * width + cursor[r as usize];
            col_idx[slot] = c;
            values[slot] = v;
            cursor[r as usize] += 1;
        }
        Ell {
            rows: coo.rows(),
            cols: coo.cols(),
            width,
            col_idx,
            values,
            nnz: coo.nnz(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Padded row width (longest row length).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of genuine stored entries (pre-padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total slots including padding (`rows × width`).
    pub fn stored_slots(&self) -> usize {
        self.col_idx.len()
    }

    /// Reconstructs the COO form (padding slots are dropped).
    pub fn to_coo(&self) -> Result<Coo, SparseError> {
        let mut triplets = Vec::with_capacity(self.nnz);
        for r in 0..self.rows as usize {
            for s in 0..self.width {
                let c = self.col_idx[r * self.width + s];
                if c != ELL_PAD {
                    triplets.push((r as Index, c, self.values[r * self.width + s]));
                }
            }
        }
        Coo::from_triplets(self.rows, self.cols, triplets)
    }

    /// SpMV `y += A·x`, used by [`crate::SpMv`].
    pub(crate) fn spmv_into(&self, x: &[Value], y: &mut [Value]) {
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for s in 0..self.width {
                let c = self.col_idx[r * self.width + s];
                if c != ELL_PAD {
                    acc += self.values[r * self.width + s] * x[c as usize];
                }
            }
            *yr += acc;
        }
    }
}

impl From<&Coo> for Ell {
    fn from(coo: &Coo) -> Self {
        Ell::from_coo(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rows_have_no_padding() {
        let coo = Coo::from_triplets(
            2,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (1, 3, 4.0)],
        )
        .unwrap();
        let ell = Ell::from_coo(&coo);
        assert_eq!(ell.width(), 2);
        assert_eq!(ell.stored_slots(), 4);
        assert_eq!(ell.to_coo().unwrap(), coo);
    }

    #[test]
    fn skewed_rows_pad() {
        let coo = Coo::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (2, 0, 1.0),
            ],
        )
        .unwrap();
        let ell = Ell::from_coo(&coo);
        assert_eq!(ell.width(), 4);
        assert_eq!(ell.stored_slots(), 12);
        assert_eq!(ell.to_coo().unwrap(), coo);
    }

    #[test]
    fn empty_matrix() {
        let coo = Coo::new(3, 3);
        let ell = Ell::from_coo(&coo);
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.to_coo().unwrap(), coo);
    }
}
