//! Parallel slice extensions (subset of `rayon::slice`).

use crate::iter::{ParallelIterator, SliceIter};

/// `par_chunks` on shared slices (stub of `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `chunk_size` elements
    /// (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;

    /// Parallel iterator over the elements.
    fn par_iter_slice(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks {
            slice: self,
            chunk_size,
        }
    }

    fn par_iter_slice(&self) -> SliceIter<'_, T> {
        SliceIter::new(self)
    }
}

/// `par_chunks_mut` on mutable slices (stub of
/// `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// See [`ParallelSlice::par_chunks`].
pub struct Chunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk_size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            Chunks {
                slice: a,
                chunk_size: self.chunk_size,
            },
            Chunks {
                slice: b,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk_size)
    }
}

/// See [`ParallelSliceMut::par_chunks_mut`].
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk_size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMut {
                slice: a,
                chunk_size: self.chunk_size,
            },
            ChunksMut {
                slice: b,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk_size)
    }
}
