//! Class-bucketed, data-parallel instance kernels — the SIMD-width hot
//! loop behind [`crate::ExecutionPlan`].
//!
//! The per-instance reference loop (`process_span` in `plan.rs`) simulates
//! the 4-lane VALU with scalar software: every instance re-dispatches
//! through its [`ValuOpcode`]'s output-mux enum, so the compiler sees an
//! opaque, branchy body and the branch predictor sees an
//! instance-dependent template mix. This module restructures the loop so
//! the work is data-parallel without changing a single output bit:
//!
//! 1. **Pattern-class bucketing (prepare time).** Each tile row's instance
//!    range is cut into fixed [`EXEC_BLOCK`]-instance blocks, and every
//!    block's indices are stably sorted by opcode class (the `u8` template
//!    LUT index). Within one class run the whole VALU configuration —
//!    x-mux selectors and output-node routing — is loop-invariant, so the
//!    kernel body is branch-free and autovectorizable.
//!
//! 2. **Compute/scatter split (run time).** A class run computes each
//!    instance's 4-lane output into a block-local staging buffer (indexed
//!    by the instance's *original* stream position); a second pass then
//!    folds the staged outputs into the y window in original stream
//!    order. Each instance's output is a pure function of its operands —
//!    identical bits in any execution order — and the scatter replays the
//!    exact accumulation sequence of the reference loop, so the window is
//!    **bit-identical** to per-instance dispatch, including signed zeros
//!    and NaN payloads. No FMA contraction is used anywhere (`a*b` and
//!    `+` stay separate IEEE ops), so no ULP bound is needed.
//!
//! 3. **Batch-lane fusion.** The kernels take a lane count: one walk of an
//!    instance's metadata (bucket index, x base, value quadruple, class
//!    selectors) feeds up to [`LANE_BLOCK`] batch vectors before moving
//!    on. [`crate::ExecutionPlan::run_batch`] processes vector lanes in
//!    blocks of [`LANE_BLOCK`], which keeps the staging buffer L1-resident
//!    (the vector-blocked layout the large-batch bench measures).
//!
//! Under the `simd` cargo feature (x86_64) the class kernel's datapath is
//! written with explicit SSE2 intrinsics — a 4-wide multiply, the two
//! pair adders and the total adder as shuffles+adds, mirroring the
//! hardware's 4 multipliers + 3 adders. Lane-wise `mulps`/`addps` round
//! exactly like their scalar counterparts and the pair/total nodes are
//! read from lanes whose operand order matches the scalar tree, so the
//! `simd` path is bit-identical too (asserted across the differential
//! zoo). On other architectures the feature falls back to the scalar
//! class kernel.

use crate::valu::{OutNode, ValuOpcode};

/// Instances per execution block: the bucketing (and the staging buffer)
/// granule. 256 instances × 4 lanes × [`LANE_BLOCK`] vectors × 4 bytes =
/// 32 KiB of staging per worker — L1-resident on anything current.
pub const EXEC_BLOCK: usize = 256;

/// Batch vectors fused per instance walk. Bounds the staging footprint;
/// larger batches are processed in lane blocks of this size.
pub const LANE_BLOCK: usize = 8;

/// Staging floats one worker needs for any (block × lane-block) tile.
pub(crate) const STAGE_STRIDE: usize = 4 * EXEC_BLOCK * LANE_BLOCK;

/// One class-sorted run inside an execution block: instances
/// `bucket_idx[start..end]` all dispatch through opcode class `class`.
///
/// `#[repr(C)]` with u32 fields only (12 bytes, no padding) so the runs
/// table can be serialised to — and mapped back from — a wire-v3 section
/// verbatim.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRun {
    /// First index into `bucket_idx` (inclusive).
    pub start: u32,
    /// Last index into `bucket_idx` (exclusive).
    pub end: u32,
    /// Opcode class (template LUT index) of every instance in the run.
    pub class: u32,
}

/// A [`ValuOpcode`] predigested for the branch-free class kernels: the
/// x-mux selectors as `usize` offsets and the output muxes as indices
/// into the 8-entry node array `[p0, p1, p2, p3, p0+p1, p2+p3, Σp, 0]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClassKernel {
    col: [usize; 4],
    sel: [usize; 4],
}

impl ClassKernel {
    pub(crate) fn from_opcode(op: ValuOpcode) -> Self {
        let cs = op.col_selectors();
        let col = [
            cs[0] as usize,
            cs[1] as usize,
            cs[2] as usize,
            cs[3] as usize,
        ];
        let os = op.out_selectors();
        let mut sel = [7usize; 4];
        for (s, &o) in sel.iter_mut().zip(os.iter()) {
            *s = match o {
                OutNode::Product(i) => i as usize,
                OutNode::Pair01 => 4,
                OutNode::Pair23 => 5,
                OutNode::Total => 6,
                OutNode::Zero => 7,
            };
        }
        ClassKernel { col, sel }
    }
}

/// Borrowed view of the plan's pre-decoded SoA instance stream, shared by
/// every classed executor call (Copy so the parallel fan-out can move it
/// into scoped workers).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SoaRef<'a> {
    pub x_base: &'a [u32],
    pub y_base: &'a [u32],
    pub values: &'a [f32],
    pub kernels: &'a [ClassKernel],
}

/// Borrowed view of the prepare-time bucketing: block-wise class-sorted
/// instance indices plus the run/block/row directory over them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BucketRef<'a> {
    /// Instance indices, block-wise stably sorted by class.
    pub bucket_idx: &'a [u32],
    /// Class-sorted runs into `bucket_idx`, in block order.
    pub class_runs: &'a [ClassRun],
    /// Per block: prefix of run counts into `class_runs` (len blocks+1).
    pub block_runs: &'a [u32],
    /// Per tile row: prefix of block counts (len rows+1).
    pub row_blocks: &'a [u32],
    /// Per tile row: instance span in the stream.
    pub inst_ranges: &'a [(usize, usize)],
}

/// The owned bucketing tables `build_buckets` produces:
/// `(bucket_idx, class_runs, block_runs, row_blocks)` as described on
/// [`BucketRef`].
pub(crate) type Buckets = (Vec<u32>, Vec<ClassRun>, Vec<u32>, Vec<u32>);

/// The prepare-time bucketing pass: cuts each tile row's instance span
/// into [`EXEC_BLOCK`]-sized blocks and stably sorts each block's indices
/// by opcode class.
pub(crate) fn build_buckets(inst_ranges: &[(usize, usize)], op_idx: &[u8]) -> Buckets {
    let n: usize = inst_ranges.iter().map(|&(i0, i1)| i1 - i0).sum();
    let mut bucket_idx: Vec<u32> = Vec::with_capacity(n);
    let mut class_runs: Vec<ClassRun> = Vec::new();
    let mut block_runs: Vec<u32> = vec![0];
    let mut row_blocks: Vec<u32> = Vec::with_capacity(inst_ranges.len() + 1);
    row_blocks.push(0);
    let mut scratch: Vec<u32> = Vec::with_capacity(EXEC_BLOCK);
    let mut n_blocks = 0u32;
    for &(i0, i1) in inst_ranges {
        let mut b0 = i0;
        while b0 < i1 {
            let b1 = (b0 + EXEC_BLOCK).min(i1);
            scratch.clear();
            scratch.extend((b0..b1).map(|i| i as u32));
            // Stable: equal classes keep their stream order, so the
            // scatter pass (which walks the original order) and this pass
            // agree on which instance is which.
            scratch.sort_by_key(|&i| op_idx[i as usize]);
            let base = bucket_idx.len() as u32;
            let mut run_start = 0usize;
            for k in 1..=scratch.len() {
                let boundary = k == scratch.len()
                    || op_idx[scratch[k] as usize] != op_idx[scratch[run_start] as usize];
                if boundary {
                    class_runs.push(ClassRun {
                        start: base + run_start as u32,
                        end: base + k as u32,
                        class: u32::from(op_idx[scratch[run_start] as usize]),
                    });
                    run_start = k;
                }
            }
            bucket_idx.extend_from_slice(&scratch);
            block_runs.push(class_runs.len() as u32);
            n_blocks += 1;
            b0 = b1;
        }
        row_blocks.push(n_blocks);
    }
    (bucket_idx, class_runs, block_runs, row_blocks)
}

/// Executes tile row `r` for `lanes` batch vectors (`lanes == 1` is the
/// single-vector path) through the class-bucketed two-pass kernel.
///
/// * `xs` holds padded x vectors at stride `xstride`; the call reads lanes
///   `lane0..lane0 + lanes`.
/// * `windows` holds the `lanes` y windows back to back, each `wlen` long
///   (the packed batch layout; a single `run` passes its one window).
/// * `stage` must be at least [`STAGE_STRIDE`] floats; contents are
///   scratch, fully overwritten per block before being read.
///
/// The per-lane accumulation order into every y element is original
/// stream order — bit-identical to the per-instance reference loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_row_classed(
    soa: SoaRef<'_>,
    buckets: BucketRef<'_>,
    r: usize,
    xs: &[f32],
    xstride: usize,
    lane0: usize,
    lanes: usize,
    windows: &mut [f32],
    wlen: usize,
    stage: &mut [f32],
) {
    debug_assert!((1..=LANE_BLOCK).contains(&lanes));
    debug_assert!(stage.len() >= STAGE_STRIDE);
    debug_assert!(windows.len() >= lanes * wlen);
    let (i0, i1) = buckets.inst_ranges[r];
    let b_lo = buckets.row_blocks[r] as usize;
    let b_hi = buckets.row_blocks[r + 1] as usize;
    let mut blk_i0 = i0;
    for b in b_lo..b_hi {
        let blk_i1 = (blk_i0 + EXEC_BLOCK).min(i1);
        for run in buckets.block_runs[b] as usize..buckets.block_runs[b + 1] as usize {
            let ClassRun {
                start: s,
                end: e,
                class,
            } = buckets.class_runs[run];
            let kern = soa.kernels[class as usize];
            let idx = &buckets.bucket_idx[s as usize..e as usize];
            compute_run(kern, idx, soa, xs, xstride, lane0, lanes, blk_i0, stage);
        }
        scatter_block(soa.y_base, blk_i0, blk_i1, lanes, stage, windows, wlen);
        blk_i0 = blk_i1;
    }
}

/// Pass 2: folds the staged per-instance outputs into the y windows in
/// original stream order — the accumulation sequence the reference loop
/// uses, replayed exactly.
fn scatter_block(
    y_base: &[u32],
    blk_i0: usize,
    blk_i1: usize,
    lanes: usize,
    stage: &[f32],
    windows: &mut [f32],
    wlen: usize,
) {
    for (k, &yb) in y_base[blk_i0..blk_i1].iter().enumerate() {
        let r0 = yb as usize;
        let sbase = k * lanes * 4;
        for l in 0..lanes {
            let s = &stage[sbase + 4 * l..sbase + 4 * l + 4];
            let w = &mut windows[l * wlen + r0..l * wlen + r0 + 4];
            w[0] += s[0];
            w[1] += s[1];
            w[2] += s[2];
            w[3] += s[3];
        }
    }
}

/// Pass 1 (scalar): one class run, branch-free. All selector state is
/// loop-invariant, every access pattern is affine in the bucket index, and
/// the 8-node mux is an indexed load from a stack array — no enum
/// dispatch in the body, so the compiler is free to unroll and
/// autovectorize.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[allow(clippy::too_many_arguments)]
fn compute_run(
    kern: ClassKernel,
    idx: &[u32],
    soa: SoaRef<'_>,
    xs: &[f32],
    xstride: usize,
    lane0: usize,
    lanes: usize,
    blk_i0: usize,
    stage: &mut [f32],
) {
    compute_run_scalar(kern, idx, soa, xs, xstride, lane0, lanes, blk_i0, stage);
}

/// Pass 1 (`simd` feature, x86_64): the same class run with the VALU
/// datapath as explicit SSE2 — `mulps` for the 4 multipliers, two
/// shuffle+`addps` stages for the pair and total adders. Only lanes whose
/// operand order matches the scalar tree are read back (lane 0 of the
/// pair vector is `p0+p1`, lane 2 is `p2+p3`, lane 0 of the total is
/// `(p0+p1)+(p2+p3)`), so the result is bit-identical to the scalar
/// kernel, NaN payloads included.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
fn compute_run(
    kern: ClassKernel,
    idx: &[u32],
    soa: SoaRef<'_>,
    xs: &[f32],
    xstride: usize,
    lane0: usize,
    lanes: usize,
    blk_i0: usize,
    stage: &mut [f32],
) {
    #[allow(unsafe_code)]
    // SAFETY: every index is validated at prepare time (`validate_stream`):
    // `x_base[i] + 4 <= xstride` for all instances, `4 * i + 4 <=
    // values.len()`, and the caller sizes `xs` to at least `(lane0 +
    // lanes) * xstride` and `stage` to `STAGE_STRIDE` (debug-asserted
    // here and in `execute_row_classed`). SSE2 is baseline on x86_64.
    unsafe {
        use core::arch::x86_64::*;
        debug_assert!(xs.len() >= (lane0 + lanes) * xstride);
        let [c0, c1, c2, c3] = kern.col;
        let [s0, s1, s2, s3] = kern.sel;
        for &ii in idx {
            let i = ii as usize;
            debug_assert!(4 * i + 4 <= soa.values.len());
            let v = _mm_loadu_ps(soa.values.as_ptr().add(4 * i));
            let cb = soa.x_base[i] as usize;
            debug_assert!(cb + 4 <= xstride);
            let sbase = (i - blk_i0) * lanes * 4;
            for l in 0..lanes {
                let xp = xs.as_ptr().add((lane0 + l) * xstride + cb);
                // The 4-to-1 x muxes: a gather of the selected x element
                // per multiplier (selectors are loop-invariant).
                let xseg = _mm_set_ps(*xp.add(c3), *xp.add(c2), *xp.add(c1), *xp.add(c0));
                let p = _mm_mul_ps(v, xseg);
                // Pair adders: lane 0 = p0+p1, lane 2 = p2+p3 (the other
                // lanes have reversed operand order and are never read).
                let swapped = _mm_shuffle_ps::<0b10_11_00_01>(p, p);
                let pair = _mm_add_ps(p, swapped);
                // Total adder: lane 0 = (p0+p1) + (p2+p3).
                let cross = _mm_shuffle_ps::<0b01_00_11_10>(pair, pair);
                let total = _mm_add_ps(pair, cross);
                let mut nodes = [0.0f32; 8];
                _mm_storeu_ps(nodes.as_mut_ptr(), p);
                nodes[4] = _mm_cvtss_f32(pair);
                nodes[5] = _mm_cvtss_f32(cross);
                nodes[6] = _mm_cvtss_f32(total);
                let out = &mut stage[sbase + 4 * l..sbase + 4 * l + 4];
                out[0] = nodes[s0];
                out[1] = nodes[s1];
                out[2] = nodes[s2];
                out[3] = nodes[s3];
            }
        }
    }
}

/// The scalar class-run body shared by the default build and the `simd`
/// fallback on non-x86_64 targets.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(dead_code))]
#[allow(clippy::too_many_arguments)]
fn compute_run_scalar(
    kern: ClassKernel,
    idx: &[u32],
    soa: SoaRef<'_>,
    xs: &[f32],
    xstride: usize,
    lane0: usize,
    lanes: usize,
    blk_i0: usize,
    stage: &mut [f32],
) {
    let [c0, c1, c2, c3] = kern.col;
    let [s0, s1, s2, s3] = kern.sel;
    for &ii in idx {
        let i = ii as usize;
        let cb = soa.x_base[i] as usize;
        let v0 = soa.values[4 * i];
        let v1 = soa.values[4 * i + 1];
        let v2 = soa.values[4 * i + 2];
        let v3 = soa.values[4 * i + 3];
        let sbase = (i - blk_i0) * lanes * 4;
        for l in 0..lanes {
            let x = &xs[(lane0 + l) * xstride + cb..(lane0 + l) * xstride + cb + 4];
            let p0 = v0 * x[c0];
            let p1 = v1 * x[c1];
            let p2 = v2 * x[c2];
            let p3 = v3 * x[c3];
            let pair01 = p0 + p1;
            let pair23 = p2 + p3;
            let total = pair01 + pair23;
            let nodes = [p0, p1, p2, p3, pair01, pair23, total, 0.0];
            let out = &mut stage[sbase + 4 * l..sbase + 4 * l + 4];
            out[0] = nodes[s0];
            out[1] = nodes[s1];
            out[2] = nodes[s2];
            out[3] = nodes[s3];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_kernel_digests_every_node_kind() {
        // Column template: four single products.
        let op = ValuOpcode::compile(0b0010_0010_0010_0010).unwrap();
        let k = ClassKernel::from_opcode(op);
        assert_eq!(k.col, [1, 1, 1, 1]);
        assert_eq!(k.sel, [0, 1, 2, 3]);
        // Row template: total into one row, zeros elsewhere.
        let op = ValuOpcode::compile(0b1111).unwrap();
        let k = ClassKernel::from_opcode(op);
        assert_eq!(k.col, [0, 1, 2, 3]);
        assert_eq!(k.sel, [6, 7, 7, 7]);
        // 2x2 block: the two pair nodes.
        let op = ValuOpcode::compile(0b0011_0011).unwrap();
        let k = ClassKernel::from_opcode(op);
        assert_eq!(k.sel, [4, 5, 7, 7]);
    }

    #[test]
    fn buckets_partition_blocks_and_sort_by_class() {
        // One row of 600 instances with interleaved classes 2,0,1,...
        let op_idx: Vec<u8> = (0..600u32).map(|i| ((i * 7 + 2) % 3) as u8).collect();
        let ranges = [(0usize, 600usize)];
        let (bucket_idx, class_runs, block_runs, row_blocks) = build_buckets(&ranges, &op_idx);
        assert_eq!(row_blocks, vec![0, 3]); // 256 + 256 + 88
        assert_eq!(bucket_idx.len(), 600);
        for b in 0..3usize {
            let (blk_i0, blk_i1) = (b * EXEC_BLOCK, ((b + 1) * EXEC_BLOCK).min(600));
            let mut seen: Vec<u32> = bucket_idx[blk_i0..blk_i1].to_vec();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (blk_i0 as u32..blk_i1 as u32).collect::<Vec<_>>(),
                "block {b} must be a permutation of its instance range"
            );
            // Runs cover the block contiguously, classes ascending, and
            // indices inside a run ascending (stability).
            let runs = &class_runs[block_runs[b] as usize..block_runs[b + 1] as usize];
            let mut cursor = blk_i0 as u32;
            let mut last_class = None;
            for &ClassRun {
                start: s,
                end: e,
                class: c,
            } in runs
            {
                assert_eq!(s, cursor);
                assert!(e > s);
                cursor = e;
                assert!(last_class < Some(c), "classes must strictly ascend");
                last_class = Some(c);
                let run = &bucket_idx[s as usize..e as usize];
                assert!(run.windows(2).all(|w| w[0] < w[1]), "stable within class");
                assert!(run.iter().all(|&i| u32::from(op_idx[i as usize]) == c));
            }
            assert_eq!(cursor, blk_i1 as u32);
        }
    }
}
