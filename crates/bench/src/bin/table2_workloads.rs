//! Table II: the workload suite — name, nnz, density, application domain
//! and the top-8 occurring local patterns with their frequencies.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin table2_workloads [-- --scale paper]
//! ```

use spasm_bench::{rule, scale_from_args, scale_name};
use spasm_patterns::{GridSize, PatternHistogram};
use spasm_sparse::spy;

fn main() {
    let scale = scale_from_args();
    println!(
        "Table II — workload characteristics ({})",
        scale_name(scale)
    );
    rule(118);
    println!(
        "{:<14} {:>10} {:>10} {:<26} {:<50}",
        "Name", "nnz", "density", "Application domain", "Top-8 local pattern shares"
    );
    rule(118);
    spasm_bench::for_each_workload(scale, |w, m| {
        let spec = w.spec();
        let hist = PatternHistogram::analyze(&m, GridSize::S4);
        let total = hist.total_blocks().max(1);
        let shares: Vec<String> = hist
            .top_n(8)
            .iter()
            .map(|&(_, f)| format!("{:.1}%", 100.0 * f as f64 / total as f64))
            .collect();
        println!(
            "{:<14} {:>10} {:>10.2e} {:<26} {:<50}",
            spec.name,
            m.nnz(),
            m.density(),
            spec.domain,
            shares.join(" ")
        );
        // The Table II "GC" thumbnail, as a 3-line spy plot.
        for line in spy::render(&m, 24, 3).lines() {
            println!("{:<14} {line}", "");
        }
    });
    rule(118);
    println!(
        "(paper-scale reference: nnz {:.2e}..{:.2e}, density {:.2e}..{:.2e})",
        1.01e6, 5.27e7, 4.76e-6, 2.45e-2
    );
}
