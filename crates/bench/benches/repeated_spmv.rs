//! Solver-loop benchmark: repeated SpMV against one prepared matrix — the
//! serving workload the prepared-plan layer exists for.
//!
//! Two paths over the same matrices:
//!
//! * **unprepared** — `Accelerator::run` per iteration: re-decodes the
//!   instance stream, rebuilds the LPT schedule and reallocates scratch on
//!   every call;
//! * **prepared** — `Accelerator::prepare` once, then `ExecutionPlan::run`
//!   per iteration: allocation-free steady state.
//!
//! Both paths are asserted bit-identical before timing. Results are
//! printed as a table and written to `BENCH_repeated_spmv.json` for the
//! perf trajectory.
//!
//! Run with `cargo bench -p spasm-bench --bench repeated_spmv`
//! (`--smoke` for a single-iteration CI liveness pass, `--scale` as
//! usual).

use std::fmt::Write as _;
use std::time::Instant;

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_bench::timing::is_smoke;
use spasm_workloads::Workload;

/// Per-iteration wall-clock of `iters` back-to-back SpMVs, in seconds.
struct LoopTiming {
    iters: u32,
    per_iter_s: f64,
}

fn time_loop(iters: u32, mut f: impl FnMut()) -> LoopTiming {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
        std::hint::black_box(&mut f);
    }
    LoopTiming {
        iters,
        per_iter_s: t0.elapsed().as_secs_f64() / f64::from(iters.max(1)),
    }
}

struct Row {
    workload: String,
    nnz: usize,
    iters: u32,
    prepare_s: f64,
    unprepared_per_iter_s: f64,
    prepared_per_iter_s: f64,
}

impl Row {
    fn amortization(&self) -> f64 {
        self.unprepared_per_iter_s / self.prepared_per_iter_s.max(1e-12)
    }

    /// Iterations after which prepare-once beats run-every-time.
    fn break_even_iters(&self) -> f64 {
        let saved = self.unprepared_per_iter_s - self.prepared_per_iter_s;
        if saved <= 0.0 {
            f64::INFINITY
        } else {
            self.prepare_s / saved
        }
    }
}

fn main() {
    spasm_bench::smoke_from_args();
    let scale = spasm_bench::scale_from_args();
    println!(
        "repeated-SpMV serving loop | scale: {} | parallel feature: {}",
        spasm_bench::scale_name(scale),
        cfg!(feature = "parallel")
    );

    // A structural cross-section of Table II: blocked FEM, anti-diagonal
    // stencil, ultra-sparse stencil, mixed fragments.
    let picks = [
        Workload::Raefsky3,
        Workload::C73,
        Workload::TmtSym,
        Workload::Cfd2,
    ];
    let iters: u32 = if is_smoke() { 1 } else { 200 };

    let mut rows: Vec<Row> = Vec::new();
    for w in picks {
        let m = w.generate(scale);
        let n_cols = m.cols() as usize;
        let n_rows = m.rows() as usize;
        let x: Vec<f32> = (0..n_cols).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();

        let pipeline =
            Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
        let prepared = pipeline.prepare(&m).expect("pipeline");
        let acc = prepared.accelerator();
        let encoded = &prepared.encoded;

        // Bit-identity gate: the fast path must not be a different
        // computation.
        let mut y_run = vec![0.0f32; n_rows];
        let run_report = acc.run(encoded, &x, &mut y_run).expect("run");
        let t_prep = Instant::now();
        let mut plan = acc.prepare(encoded).expect("prepare");
        let prepare_s = t_prep.elapsed().as_secs_f64();
        let mut y_plan = vec![0.0f32; n_rows];
        let plan_report = plan.run(&x, &mut y_plan).expect("plan run").clone();
        assert_eq!(
            y_run.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_plan.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{w}: plan.run diverged from Accelerator::run"
        );
        assert_eq!(plan_report, run_report, "{w}: ExecReport diverged");

        let mut y = vec![0.0f32; n_rows];
        let unprepared = time_loop(iters, || {
            y.fill(0.0);
            acc.run(encoded, &x, &mut y).expect("run");
        });
        let prepared_t = time_loop(iters, || {
            y.fill(0.0);
            plan.run(&x, &mut y).expect("plan run");
        });

        let row = Row {
            workload: w.to_string(),
            nnz: m.nnz(),
            iters: unprepared.iters,
            prepare_s,
            unprepared_per_iter_s: unprepared.per_iter_s,
            prepared_per_iter_s: prepared_t.per_iter_s,
        };
        println!(
            "{:<14} {:>9} nnz  unprepared {:>10.1} us/it  prepared {:>10.1} us/it  \
             {:>6.2}x  break-even {:>7.1} iters",
            row.workload,
            row.nnz,
            row.unprepared_per_iter_s * 1e6,
            row.prepared_per_iter_s * 1e6,
            row.amortization(),
            row.break_even_iters(),
        );
        rows.push(row);
    }

    let geomean = spasm_bench::geomean(rows.iter().map(Row::amortization));
    println!("geomean amortization: {geomean:.2}x over {iters} iterations/workload");
    // Opt-in floor (SPASM_BENCH_ASSERT=1): preparing once must make the
    // serving loop meaningfully cheaper than re-running the full setup.
    spasm_bench::maybe_assert_speedup("repeated_spmv geomean amortization", geomean, 1.2);

    // Hand-rolled JSON (no serde in the build environment).
    let mut json = String::from("{\n  \"bench\": \"repeated_spmv\",\n");
    json.push_str(&spasm_bench::metadata_json());
    let _ = writeln!(json, "  \"smoke\": {},", is_smoke());
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"geomean_amortization\": {geomean},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"nnz\": {}, \"iters\": {}, \
             \"prepare_s\": {}, \"unprepared_per_iter_s\": {}, \
             \"prepared_per_iter_s\": {}, \"amortization\": {}}}",
            r.workload,
            r.nnz,
            r.iters,
            r.prepare_s,
            r.unprepared_per_iter_s,
            r.prepared_per_iter_s,
            r.amortization()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    // cargo bench runs with the package dir as cwd; anchor the artifact at
    // the workspace root where CI picks it up.
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_repeated_spmv.json"
    );
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");
}
