//! Backward compatibility of the v1/v2 matrix wire formats, pinned
//! against golden byte streams committed under `tests/golden/`. The
//! golden files were produced by this same test with
//! `SPASM_REGEN_GOLDEN=1` and must never be regenerated casually: any
//! byte-level change to the serializer that breaks these pins breaks
//! every plan already at rest in a store.
//!
//! Registered in `crates/store` (`[[test]] name = "wire_compat"`).

use std::path::PathBuf;

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_format::{is_v3, SpasmMatrix, WireError};
use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;
use spasm_sparse::Coo;
use spasm_store::{FrozenPlan, PlanBuffer};

/// The fixed matrix behind the golden streams. Hand-rolled triplets, not
/// a workload generator, so generator tweaks can never shift the pin.
fn golden_matrix() -> Coo {
    let n = 96u32;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0));
        t.push((i, (i * 37 + 11) % n, ((i % 7) + 1) as f32 * 0.25));
        t.push(((i * 53 + 5) % n, i, -0.5));
    }
    Coo::from_triplets(n, n, t).expect("valid triplets")
}

/// The encoded form of [`golden_matrix`], produced by a fully pinned
/// pipeline (fixed portfolio, fixed schedule, serial) so the encoding is
/// deterministic across feature matrices and host thread counts.
fn golden_encoded() -> SpasmMatrix {
    Pipeline::with_options(
        PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(256, HwConfig::spasm_4_1())
            .parallelism(Parallelism::Serial),
    )
    .prepare(&golden_matrix())
    .expect("pipeline prepare")
    .encoded
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")).join(name)
}

fn load_golden(name: &str) -> Vec<u8> {
    let path = golden_path(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden stream {} ({e}); regenerate with \
             SPASM_REGEN_GOLDEN=1 cargo test -p spasm-store --test wire_compat",
            path.display()
        )
    })
}

/// With `SPASM_REGEN_GOLDEN=1`, (re)writes the golden files and returns
/// true; the pinned assertions are skipped for that run.
fn maybe_regen() -> bool {
    if std::env::var_os("SPASM_REGEN_GOLDEN").is_none() {
        return false;
    }
    let m = golden_encoded();
    std::fs::create_dir_all(golden_path("")).expect("mkdir tests/golden");
    std::fs::write(golden_path("compat_v1.bin"), m.to_bytes_v1()).expect("write v1");
    std::fs::write(golden_path("compat_v2.bin"), m.to_bytes()).expect("write v2");
    true
}

#[test]
fn golden_v1_stream_still_decodes() {
    if maybe_regen() {
        return;
    }
    let bytes = load_golden("compat_v1.bin");
    assert_eq!(
        u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        1
    );
    let decoded = SpasmMatrix::from_bytes(&bytes).expect("v1 decode");
    assert_eq!(decoded.to_coo(), golden_matrix());
    // The current legacy serializer still emits the identical stream.
    assert_eq!(golden_encoded().to_bytes_v1().as_ref(), &bytes[..]);
}

#[test]
fn golden_v2_stream_still_decodes_and_serializer_is_stable() {
    if maybe_regen() {
        return;
    }
    let bytes = load_golden("compat_v2.bin");
    assert_eq!(
        u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        2
    );
    let decoded = SpasmMatrix::from_bytes(&bytes).expect("v2 decode");
    assert_eq!(decoded.to_coo(), golden_matrix());

    // Byte-for-byte serializer stability: plans at rest stay readable
    // *and* freshly written streams keep hitting the same fingerprints.
    let now = golden_encoded();
    assert_eq!(now.to_bytes().as_ref(), &bytes[..]);
    assert_eq!(now.fingerprint().token(), decoded.fingerprint().token());
}

#[test]
fn legacy_streams_are_not_mistaken_for_v3() {
    if maybe_regen() {
        return;
    }
    for name in ["compat_v1.bin", "compat_v2.bin"] {
        let bytes = load_golden(name);
        assert!(!is_v3(&bytes), "{name} misdetected as a v3 container");
        // And the v3 reader refuses them with a typed error, not a panic.
        match FrozenPlan::open(PlanBuffer::from_bytes(&bytes)) {
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
            Ok(_) => panic!("{name} parsed as a v3 container"),
        }
    }
}

#[test]
fn corrupted_legacy_streams_are_rejected() {
    if maybe_regen() {
        return;
    }
    // v2 carries a trailing CRC: any single-bit flip is a typed error.
    let bytes = load_golden("compat_v2.bin");
    for off in (8..bytes.len()).step_by(13) {
        let mut evil = bytes.clone();
        evil[off] ^= 0x10;
        match SpasmMatrix::from_bytes(&evil) {
            Err(
                WireError::ChecksumMismatch { .. }
                | WireError::Inconsistent(_)
                | WireError::Truncated { .. }
                | WireError::BadMagic
                | WireError::BadVersion(_),
            ) => {}
            Err(other) => panic!("unexpected error class for flip at {off}: {other}"),
            Ok(_) => panic!("bit flip at {off} survived the v2 checksum"),
        }
    }
}
